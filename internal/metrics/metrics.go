// Package metrics is a dependency-free Prometheus-compatible
// instrumentation library: counters, gauges and histograms (plain and
// labelled), a registry, and an HTTP handler emitting the Prometheus text
// exposition format (version 0.0.4), so any Prometheus scraper can consume
// a GET /metrics endpoint backed by it.
//
// The repo builds with no third-party modules, so this package supplies
// the subset of github.com/prometheus/client_golang the serving path
// needs, with the same shape: instruments are created from Opts
// (namespace_subsystem_name), registered once into a Registry, and every
// exported family is assertable in tests via the sibling testutil package
// (ToFloat64, CollectAndCompare) rather than only scraped by hand.
//
// All instruments are safe for concurrent use: counters and gauges are
// lock-free atomics, histograms take a short mutex per observation, and
// vectors guard their child map with a mutex. Gathering never blocks
// writers for longer than one sample copy.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Opts names an instrument. The full family name is the non-empty parts of
// Namespace, Subsystem and Name joined by underscores.
type Opts struct {
	Namespace string
	Subsystem string
	Name      string
	Help      string
}

func (o Opts) fullName() string {
	parts := make([]string, 0, 3)
	for _, p := range []string{o.Namespace, o.Subsystem, o.Name} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	name := strings.Join(parts, "_")
	if name == "" {
		panic("metrics: instrument with empty name")
	}
	return name
}

// Label is one name="value" pair of a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line of a family: an optional name suffix
// ("_bucket", "_sum", "_count" for histograms), the label pairs in
// declaration order, and the value.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family in exposition form: every sample of one
// name, with its HELP and TYPE metadata.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge" or "histogram"
	Samples []Sample
}

// Collector is anything that can report one metric family. All instruments
// in this package implement it; callers may implement it directly for
// gauges computed at scrape time over external state (see the cluster
// membership collectors).
type Collector interface {
	Family() Family
}

// value is a float64 updated with lock-free compare-and-swap.
type value struct{ bits atomic.Uint64 }

func (v *value) add(d float64) {
	for {
		o := v.bits.Load()
		n := math.Float64bits(math.Float64frombits(o) + d)
		if v.bits.CompareAndSwap(o, n) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct {
	opts   Opts
	labels []Label // set for children of a CounterVec
	val    value
}

// NewCounter returns a counter starting at 0.
func NewCounter(opts Opts) *Counter {
	opts.fullName() // validate eagerly
	return &Counter{opts: opts}
}

// Inc adds 1.
func (c *Counter) Inc() { c.val.add(1) }

// Add adds v, which must not be negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decreased")
	}
	c.val.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.val.get() }

// Family implements Collector.
func (c *Counter) Family() Family {
	return Family{
		Name: c.opts.fullName(), Help: c.opts.Help, Type: "counter",
		Samples: []Sample{{Labels: c.labels, Value: c.Value()}},
	}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	opts   Opts
	labels []Label
	val    value
}

// NewGauge returns a gauge starting at 0.
func NewGauge(opts Opts) *Gauge {
	opts.fullName()
	return &Gauge{opts: opts}
}

// Set sets the gauge.
func (g *Gauge) Set(v float64) { g.val.set(v) }

// Inc adds 1; Dec subtracts 1; Add adds v (may be negative).
func (g *Gauge) Inc()          { g.val.add(1) }
func (g *Gauge) Dec()          { g.val.add(-1) }
func (g *Gauge) Add(v float64) { g.val.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.get() }

// Family implements Collector.
func (g *Gauge) Family() Family {
	return Family{
		Name: g.opts.fullName(), Help: g.opts.Help, Type: "gauge",
		Samples: []Sample{{Labels: g.labels, Value: g.Value()}},
	}
}

// GaugeFunc is a gauge whose value is computed at gather time — the right
// shape for instantaneous state someone else owns (semaphore occupancy,
// queue depth), where a stored gauge would race or go stale.
type GaugeFunc struct {
	opts Opts
	fn   func() float64
}

// NewGaugeFunc returns a gauge computed by fn at every gather.
func NewGaugeFunc(opts Opts, fn func() float64) *GaugeFunc {
	opts.fullName()
	if fn == nil {
		panic("metrics: nil GaugeFunc")
	}
	return &GaugeFunc{opts: opts, fn: fn}
}

// Value calls the function.
func (g *GaugeFunc) Value() float64 { return g.fn() }

// Family implements Collector.
func (g *GaugeFunc) Family() Family {
	return Family{
		Name: g.opts.fullName(), Help: g.opts.Help, Type: "gauge",
		Samples: []Sample{{Value: g.fn()}},
	}
}

// DefBuckets are the default histogram buckets, in seconds: latency from
// sub-millisecond cache hits to multi-minute analyses.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}

// Histogram counts observations into cumulative buckets and tracks their
// sum — request latencies, mostly.
type Histogram struct {
	opts    Opts
	labels  []Label
	buckets []float64 // upper bounds, sorted; +Inf is implicit

	mu     sync.Mutex
	counts []uint64
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram over the given bucket upper bounds
// (nil = DefBuckets).
func NewHistogram(opts Opts, buckets []float64) *Histogram {
	opts.fullName()
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{opts: opts, buckets: b, counts: make([]uint64, len(b))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile of the recorded observations from the
// bucket counts, with linear interpolation inside the bucket the rank
// falls into. Observations past the largest finite bucket clamp to that
// bound, and an empty histogram reports 0 — callers treat 0 as "no
// signal" and fall back to their own default.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	count := h.count
	h.mu.Unlock()
	return bucketQuantile(q, h.buckets, counts, count)
}

func bucketQuantile(q float64, bounds []float64, counts []uint64, total uint64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(total)
	var cum float64
	for i, ub := range bounds {
		prev := cum
		cum += float64(counts[i])
		if cum >= rank && counts[i] > 0 {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			return lower + (ub-lower)*(rank-prev)/float64(counts[i])
		}
	}
	// The rank lands among observations above every finite bucket.
	return bounds[len(bounds)-1]
}

// Family implements Collector.
func (h *Histogram) Family() Family {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	f := Family{Name: h.opts.fullName(), Help: h.opts.Help, Type: "histogram"}
	cum := uint64(0)
	for i, ub := range h.buckets {
		cum += counts[i]
		f.Samples = append(f.Samples, Sample{
			Suffix: "_bucket",
			Labels: append(append([]Label(nil), h.labels...), Label{Name: "le", Value: formatFloat(ub)}),
			Value:  float64(cum),
		})
	}
	f.Samples = append(f.Samples,
		Sample{Suffix: "_bucket", Labels: append(append([]Label(nil), h.labels...), Label{Name: "le", Value: "+Inf"}), Value: float64(count)},
		Sample{Suffix: "_sum", Labels: h.labels, Value: sum},
		Sample{Suffix: "_count", Labels: h.labels, Value: float64(count)},
	)
	return f
}

// vec is the shared child-map machinery of the labelled instruments.
type vec[T any] struct {
	opts       Opts
	labelNames []string
	make       func(labels []Label) *T

	mu       sync.Mutex
	children map[string]*T
	order    []string // insertion-ordered keys; Family sorts for stable output
}

func newVec[T any](opts Opts, labelNames []string, mk func([]Label) *T) *vec[T] {
	opts.fullName()
	if len(labelNames) == 0 {
		panic("metrics: labelled instrument with no label names")
	}
	return &vec[T]{opts: opts, labelNames: labelNames, make: mk, children: make(map[string]*T)}
}

func (v *vec[T]) with(values ...string) *T {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			v.opts.fullName(), len(v.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		labels := make([]Label, len(values))
		for i, val := range values {
			labels[i] = Label{Name: v.labelNames[i], Value: val}
		}
		c = v.make(labels)
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

// snapshot returns the children sorted by label key for deterministic
// exposition.
func (v *vec[T]) snapshot() []*T {
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	sort.Strings(keys)
	out := make([]*T, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	v.mu.Unlock()
	return out
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ v *vec[Counter] }

// NewCounterVec returns a counter vector over the given label names.
func NewCounterVec(opts Opts, labelNames []string) *CounterVec {
	return &CounterVec{v: newVec(opts, labelNames, func(labels []Label) *Counter {
		return &Counter{opts: opts, labels: labels}
	})}
}

// WithLabelValues returns (creating on first use) the child for the given
// label values, in declaration order.
func (cv *CounterVec) WithLabelValues(values ...string) *Counter { return cv.v.with(values...) }

// Family implements Collector.
func (cv *CounterVec) Family() Family {
	f := Family{Name: cv.v.opts.fullName(), Help: cv.v.opts.Help, Type: "counter"}
	for _, c := range cv.v.snapshot() {
		f.Samples = append(f.Samples, Sample{Labels: c.labels, Value: c.Value()})
	}
	return f
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ v *vec[Gauge] }

// NewGaugeVec returns a gauge vector over the given label names.
func NewGaugeVec(opts Opts, labelNames []string) *GaugeVec {
	return &GaugeVec{v: newVec(opts, labelNames, func(labels []Label) *Gauge {
		return &Gauge{opts: opts, labels: labels}
	})}
}

// WithLabelValues returns (creating on first use) the child for the given
// label values.
func (gv *GaugeVec) WithLabelValues(values ...string) *Gauge { return gv.v.with(values...) }

// Family implements Collector.
func (gv *GaugeVec) Family() Family {
	f := Family{Name: gv.v.opts.fullName(), Help: gv.v.opts.Help, Type: "gauge"}
	for _, g := range gv.v.snapshot() {
		f.Samples = append(f.Samples, Sample{Labels: g.labels, Value: g.Value()})
	}
	return f
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ v *vec[Histogram] }

// NewHistogramVec returns a histogram vector over the given label names
// and bucket bounds (nil = DefBuckets).
func NewHistogramVec(opts Opts, buckets []float64, labelNames []string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &HistogramVec{v: newVec(opts, labelNames, func(labels []Label) *Histogram {
		return &Histogram{opts: opts, labels: labels, buckets: b, counts: make([]uint64, len(b))}
	})}
}

// WithLabelValues returns (creating on first use) the child for the given
// label values.
func (hv *HistogramVec) WithLabelValues(values ...string) *Histogram { return hv.v.with(values...) }

// Quantile estimates the q-quantile across every child merged — the
// vector-wide distribution. Children share bucket bounds by construction.
// An empty vector (or one with no observations) reports 0.
func (hv *HistogramVec) Quantile(q float64) float64 {
	var (
		bounds []float64
		counts []uint64
		total  uint64
	)
	for _, h := range hv.v.snapshot() {
		h.mu.Lock()
		if counts == nil {
			bounds = h.buckets
			counts = make([]uint64, len(h.counts))
		}
		for i, c := range h.counts {
			counts[i] += c
		}
		total += h.count
		h.mu.Unlock()
	}
	return bucketQuantile(q, bounds, counts, total)
}

// Family implements Collector.
func (hv *HistogramVec) Family() Family {
	f := Family{Name: hv.v.opts.fullName(), Help: hv.v.opts.Help, Type: "histogram"}
	for _, h := range hv.v.snapshot() {
		f.Samples = append(f.Samples, h.Family().Samples...)
	}
	return f
}

// Registry holds a set of collectors with unique family names.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	names      map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: make(map[string]bool)} }

// MustRegister adds collectors, panicking on a duplicate family name —
// two collectors exposing the same name would emit an invalid scrape.
func (r *Registry) MustRegister(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		name := c.Family().Name
		if r.names[name] {
			panic(fmt.Sprintf("metrics: duplicate family %q", name))
		}
		r.names[name] = true
		r.collectors = append(r.collectors, c)
	}
}

// Gather snapshots every registered family, sorted by name.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	fams := make([]Family, len(cs))
	for i, c := range cs {
		fams[i] = c.Family()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams
}

// Handler returns the GET /metrics endpoint: the registry's families in
// the Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		WriteText(&sb, r.Gather())
		_, _ = w.Write([]byte(sb.String()))
	})
}

// WriteText renders families in the Prometheus text exposition format.
func WriteText(sb *strings.Builder, fams []Family) {
	for _, f := range fams {
		fmt.Fprintf(sb, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(sb, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			sb.WriteString(f.Name)
			sb.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				sb.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(sb, "%s=%q", l.Name, l.Value)
				}
				sb.WriteByte('}')
			}
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(s.Value))
			sb.WriteByte('\n')
		}
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
