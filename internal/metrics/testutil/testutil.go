// Package testutil pins exported metrics in tests, mirroring the
// prometheus/client_golang testutil idiom: every metric family the serving
// path exports is asserted by at least one ToFloat64 or CollectAndCompare
// call, so the numbers operators scrape are proven, not decorative.
package testutil

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// ToFloat64 returns the single sample value of a collector: a plain
// counter or gauge, or a vector with exactly one child. It panics when
// the collector carries zero or several samples (use CollectAndCompare
// there), matching the prometheus testutil contract.
func ToFloat64(c metrics.Collector) float64 {
	f := c.Family()
	var vals []float64
	for _, s := range f.Samples {
		if s.Suffix == "" {
			vals = append(vals, s.Value)
		}
	}
	if len(vals) != 1 {
		panic(fmt.Sprintf("testutil: ToFloat64 on %s: %d samples, want exactly 1", f.Name, len(vals)))
	}
	return vals[0]
}

// CollectAndCompare renders one collector in the text exposition format and
// compares it against the expected text. metricNames, when given, filters
// to those family names (a no-op for single-family collectors with a
// matching name; a mismatch compares nothing and fails on non-empty
// expectations).
func CollectAndCompare(c metrics.Collector, expected io.Reader, metricNames ...string) error {
	return compare([]metrics.Family{c.Family()}, expected, metricNames)
}

// GatherAndCompare is CollectAndCompare over a whole registry.
func GatherAndCompare(r *metrics.Registry, expected io.Reader, metricNames ...string) error {
	return compare(r.Gather(), expected, metricNames)
}

func compare(fams []metrics.Family, expected io.Reader, names []string) error {
	keep := func(string) bool { return true }
	if len(names) > 0 {
		set := make(map[string]bool, len(names))
		for _, n := range names {
			set[n] = true
		}
		keep = func(n string) bool { return set[n] }
	}
	var filtered []metrics.Family
	for _, f := range fams {
		if keep(f.Name) {
			filtered = append(filtered, f)
		}
	}
	var sb strings.Builder
	metrics.WriteText(&sb, filtered)
	got := canonical(sb.String())

	raw, err := io.ReadAll(expected)
	if err != nil {
		return fmt.Errorf("testutil: reading expected text: %w", err)
	}
	want := canonical(string(raw))
	if got != want {
		return fmt.Errorf("testutil: exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	return nil
}

// canonical trims per-line whitespace and drops blank lines, so expected
// strings in tests can be indented naturally.
func canonical(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// ParseText parses a text exposition body into sample values keyed by the
// sample line's identity — `name` or `name{label="v",...}` exactly as
// rendered — for end-to-end scrape assertions against a live /metrics.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("testutil: bad exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("testutil: bad value in line %q: %w", line, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out, sc.Err()
}
