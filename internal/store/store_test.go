package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics/testutil"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"v":1,"basis":[[1,2],[3,4]]}`)
	if err := s.Put("stable", "abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("stable", "abc123")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	if v := testutil.ToFloat64(s.Metrics().Reads.WithLabelValues("hit")); v != 1 {
		t.Fatalf("hit counter = %v, want 1", v)
	}
}

func TestGetMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("stable", "deadbeef")
	if err != nil || got != nil {
		t.Fatalf("Get = %q, %v; want nil, nil", got, err)
	}
	if v := testutil.ToFloat64(s.Metrics().Reads.WithLabelValues("miss")); v != 1 {
		t.Fatalf("miss counter = %v, want 1", v)
	}
}

// A corrupt entry is deleted and never trusted: Get reports ErrCorrupt,
// and the next Get is a clean miss.
func TestCorruptEntryDeletedNotTrusted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("basis", "cafe", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "basis", "cafe")
	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped payload bit": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"truncated":           func(b []byte) []byte { return b[:len(b)-3] },
		"bad magic":           func(b []byte) []byte { b[0] = 'X'; return b },
		"short file":          func(b []byte) []byte { return b[:5] },
	} {
		if err := s.Put("basis", "cafe", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, corrupt(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("basis", "cafe"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Get err = %v, want ErrCorrupt", name, err)
		}
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: corrupt entry not deleted", name)
		}
		if got, err := s.Get("basis", "cafe"); err != nil || got != nil {
			t.Fatalf("%s: after corruption Get = %q, %v; want clean miss", name, got, err)
		}
	}
}

func TestPutOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("stable", "aa", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("stable", "aa", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("stable", "aa")
	if err != nil || string(got) != "new" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Join(dir, "stable"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir has %d entries, want 1", len(entries))
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "../etc", "UPPER", "a/b", "a.b"} {
		if err := s.Put(bad, "aa", []byte("x")); err == nil {
			t.Errorf("Put accepted kind %q", bad)
		}
		if err := s.Put("stable", bad, []byte("x")); err == nil {
			t.Errorf("Put accepted hash %q", bad)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("stable", "bb", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// store.read fires → behaves as corruption: entry deleted, ErrCorrupt.
	if err := faultinject.Configure(faultinject.PointStoreRead + "=at:1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	if _, err := s.Get("stable", "bb"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("injected read err = %v, want ErrCorrupt", err)
	}
	if got, err := s.Get("stable", "bb"); err != nil || got != nil {
		t.Fatalf("after injected corruption Get = %q, %v; want clean miss", got, err)
	}

	// store.write fires → Put fails, no entry appears.
	if err := faultinject.Configure(faultinject.PointStoreWrite + "=at:1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("stable", "bb", []byte("x")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected write err = %v, want ErrInjected", err)
	}
	faultinject.Disable()
	if got, err := s.Get("stable", "bb"); err != nil || got != nil {
		t.Fatalf("entry appeared despite failed Put: %q, %v", got, err)
	}
	if err := s.Put("stable", "bb", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecode(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), make([]byte, 4096)} {
		got, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("Decode(Encode(%d bytes)) err: %v", len(payload), err)
		}
		if string(got) != string(payload) {
			t.Fatalf("round trip mangled %d-byte payload", len(payload))
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) accepted")
	}
}
