// Package store is the disk layer under the engine's in-memory artifact
// cache: a content-hash-keyed, file-per-entry blob store that survives
// restarts, so a recycled worker serves its first repeated-protocol
// request warm instead of recomputing stable sets from scratch.
//
// Layout: one file per entry at <dir>/<kind>/<hash>, where kind names the
// artifact family ("stable", "basis") and hash is the protocol's content
// hash. Each file is framed
//
//	"PPA1" | uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// so torn writes and bit rot are detected on read. The payload itself is
// a versioned encoding owned by the caller (internal/engine).
//
// Writes are atomic: payload goes to a temp file in the same directory,
// is fsync'd, then renamed over the final path — a crash mid-Put leaves
// either the old entry or none, never a half-written one. Reads are
// corruption-tolerant: an entry that fails framing or CRC is deleted and
// reported as a miss, so the caller recomputes rather than trusting it.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

var magic = [4]byte{'P', 'P', 'A', '1'}

// maxPayload caps a single entry at 1 GiB — far above any real artifact,
// low enough that a corrupt length prefix can't drive a giant allocation.
const maxPayload = 1 << 30

// ErrCorrupt is returned (wrapped) by Get when an entry fails framing or
// checksum validation. The entry has already been deleted by then.
var ErrCorrupt = errors.New("store: corrupt entry")

// Store is a disk-backed artifact store rooted at one directory. Methods
// are safe for concurrent use; concurrent Puts of the same key are
// last-writer-wins, which is harmless because entries are content-keyed
// (every writer writes the same artifact).
type Store struct {
	dir     string
	metrics *Metrics
	// gc is the size-governance state, nil until EnableGC (see gc.go).
	gc atomic.Pointer[gcState]
}

// Metrics is the store's instrumentation (pp_store_* families).
type Metrics struct {
	// Reads counts Get calls by result: hit, miss, corrupt, error.
	Reads *metrics.CounterVec
	// Writes counts Put calls by result: ok, error.
	Writes *metrics.CounterVec
	// PeerFetches counts artifacts obtained from cluster peers rather
	// than local disk or recomputation, by result: hit, miss, error. The
	// store itself never fetches; the engine's peer-fetch path records
	// here so the whole artifact-durability story is one subsystem.
	PeerFetches *metrics.CounterVec
	// GCEvictions counts entries the size-governance GC deleted.
	GCEvictions *metrics.Counter
	// GCErrors counts eviction deletes that failed (retried next pass).
	GCErrors *metrics.Counter
	// GCRuns counts eviction passes, fired or not.
	GCRuns *metrics.Counter
	// GCBytes reports the governed on-disk size at gather time (0 while
	// governance is disabled).
	GCBytes *metrics.GaugeFunc
}

func newStoreMetrics(s *Store) *Metrics {
	sub := func(name, help string) metrics.Opts {
		return metrics.Opts{Namespace: "pp", Subsystem: "store", Name: name, Help: help}
	}
	return &Metrics{
		Reads: metrics.NewCounterVec(
			sub("reads_total", "Disk artifact-store reads, by result (hit, miss, corrupt, error)."),
			[]string{"result"}),
		Writes: metrics.NewCounterVec(
			sub("writes_total", "Disk artifact-store writes, by result (ok, error)."),
			[]string{"result"}),
		PeerFetches: metrics.NewCounterVec(
			sub("peer_fetches_total", "Artifacts fetched from cluster peers, by result (hit, miss, error)."),
			[]string{"result"}),
		GCEvictions: metrics.NewCounter(
			sub("gc_evictions_total", "Artifact-store entries evicted by the size-governance GC.")),
		GCErrors: metrics.NewCounter(
			sub("gc_errors_total", "Artifact-store GC eviction deletes that failed.")),
		GCRuns: metrics.NewCounter(
			sub("gc_runs_total", "Artifact-store GC eviction passes.")),
		GCBytes: metrics.NewGaugeFunc(
			sub("gc_bytes", "Governed artifact-store size in bytes (0 while GC is disabled)."),
			func() float64 { return float64(s.GCBytes()) }),
	}
}

// Metrics returns the store's instrumentation.
func (s *Store) Metrics() *Metrics { return s.metrics }

// Collectors returns every collector of the set, for registration.
func (m *Metrics) Collectors() []metrics.Collector {
	return []metrics.Collector{m.Reads, m.Writes, m.PeerFetches, m.GCEvictions, m.GCErrors, m.GCRuns, m.GCBytes}
}

// Register registers the whole set into reg.
func (m *Metrics) Register(reg *metrics.Registry) { reg.MustRegister(m.Collectors()...) }

// Open roots a store at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir}
	s.metrics = newStoreMetrics(s)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey keeps kinds and hashes inside one path segment: lowercase
// hex/alphanumerics only, so a hostile hash can't traverse out of dir.
func validKey(part string) bool {
	if part == "" || len(part) > 128 {
		return false
	}
	for i := 0; i < len(part); i++ {
		c := part[i]
		if !('a' <= c && c <= 'z' || '0' <= c && c <= '9') {
			return false
		}
	}
	return true
}

func (s *Store) path(kind, hash string) (string, error) {
	if !validKey(kind) || !validKey(hash) {
		return "", fmt.Errorf("store: invalid key %q/%q", kind, hash)
	}
	return filepath.Join(s.dir, kind, hash), nil
}

// Get returns the payload stored under (kind, hash), or (nil, nil) on a
// clean miss. A corrupt entry is deleted and surfaces as an
// ErrCorrupt-wrapped error; callers treat it exactly like a miss (the
// next Put rewrites it) but can log or count it.
func (s *Store) Get(kind, hash string) ([]byte, error) {
	p, err := s.path(kind, hash)
	if err != nil {
		s.metrics.Reads.WithLabelValues("error").Inc()
		return nil, err
	}
	raw, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		s.metrics.Reads.WithLabelValues("miss").Inc()
		return nil, nil
	}
	if err == nil {
		// The store.read failpoint models bit rot: an armed read behaves
		// exactly like an on-disk corruption, exercising the
		// delete-and-recompute path.
		err = faultinject.Hit(faultinject.PointStoreRead)
	}
	if err != nil {
		if errors.Is(err, faultinject.ErrInjected) {
			os.Remove(p)
			s.gcForget(kind, hash)
			s.metrics.Reads.WithLabelValues("corrupt").Inc()
			return nil, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, kind, hash, err)
		}
		s.metrics.Reads.WithLabelValues("error").Inc()
		return nil, fmt.Errorf("store: read %s/%s: %w", kind, hash, err)
	}
	payload, err := Decode(raw)
	if err != nil {
		// Never trust a bad entry: delete it so the recompute's Put
		// replaces it, and the corruption can't resurface.
		os.Remove(p)
		s.gcForget(kind, hash)
		s.metrics.Reads.WithLabelValues("corrupt").Inc()
		return nil, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, kind, hash, err)
	}
	s.gcTouch(kind, hash, int64(len(raw)))
	s.metrics.Reads.WithLabelValues("hit").Inc()
	return payload, nil
}

// gcTouch marks an entry as recently used in the GC index, if enabled.
func (s *Store) gcTouch(kind, hash string, size int64) {
	if g := s.gc.Load(); g != nil {
		g.record(kind, hash, size)
	}
}

// gcForget drops an entry from the GC index, if enabled.
func (s *Store) gcForget(kind, hash string) {
	if g := s.gc.Load(); g != nil {
		g.forget(kind, hash)
	}
}

// Put stores payload under (kind, hash) atomically: temp file, fsync,
// rename. Failures leave any previous entry intact.
func (s *Store) Put(kind, hash string, payload []byte) error {
	err := s.put(kind, hash, payload)
	if err != nil {
		s.metrics.Writes.WithLabelValues("error").Inc()
		return err
	}
	s.gcTouch(kind, hash, int64(12+len(payload)))
	s.metrics.Writes.WithLabelValues("ok").Inc()
	return nil
}

func (s *Store) put(kind, hash string, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("store: payload %d bytes exceeds limit", len(payload))
	}
	p, err := s.path(kind, hash)
	if err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.PointStoreWrite); err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(dir, "."+hash+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(Encode(payload)); err != nil {
		cleanup()
		return fmt.Errorf("store: write %s/%s: %w", kind, hash, err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: sync %s/%s: %w", kind, hash, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %s/%s: %w", kind, hash, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename %s/%s: %w", kind, hash, err)
	}
	return nil
}

// Delete removes the entry under (kind, hash); missing entries are fine.
func (s *Store) Delete(kind, hash string) error {
	p, err := s.path(kind, hash)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: delete %s/%s: %w", kind, hash, err)
	}
	s.gcForget(kind, hash)
	return nil
}

// Encode frames a payload for storage or transport: magic, length, CRC,
// payload. The same frame travels over /v1/artifacts so peers validate
// fetched artifacts with the same code path as disk reads.
func Encode(payload []byte) []byte {
	out := make([]byte, 12+len(payload))
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[8:], crc32.ChecksumIEEE(payload))
	copy(out[12:], payload)
	return out
}

// Decode validates a frame and returns its payload.
func Decode(raw []byte) ([]byte, error) {
	if len(raw) < 12 || [4]byte(raw[:4]) != magic {
		return nil, errors.New("bad frame header")
	}
	n := binary.LittleEndian.Uint32(raw[4:])
	if n > maxPayload || int(n) != len(raw)-12 {
		return nil, fmt.Errorf("frame length %d does not match %d payload bytes", n, len(raw)-12)
	}
	payload := raw[12:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[8:]) {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}
