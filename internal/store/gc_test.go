package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// gcStore opens a governed store in a temp dir in manual mode (no
// background goroutine), so only explicit RunGC calls drive eviction and
// every test's eviction order is deterministic.
func gcStore(t *testing.T, maxBytes int64, lowWater float64) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableGC(GCOptions{MaxBytes: maxBytes, LowWater: lowWater, Interval: -1}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseGC)
	return s
}

// entrySize is the framed on-disk size of a payload of n bytes.
func entrySize(n int) int64 { return int64(12 + n) }

func mustPut(t *testing.T, s *Store, hash string, n int) {
	t.Helper()
	if err := s.Put("stable", hash, make([]byte, n)); err != nil {
		t.Fatal(err)
	}
}

func present(t *testing.T, s *Store, hash string) bool {
	t.Helper()
	_, err := os.Stat(filepath.Join(s.Dir(), "stable", hash))
	if err == nil {
		return true
	}
	if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return false
}

func TestGCEvictsColdEntriesFirst(t *testing.T) {
	s := gcStore(t, 5000, 0.5)
	for _, h := range []string{"aa", "bb", "cc", "dd"} {
		mustPut(t, s, h, 1000)
	}
	// Touch aa so it is hotter than bb/cc/dd despite being written first.
	if p, err := s.Get("stable", "aa"); err != nil || p == nil {
		t.Fatalf("warm read: %v", err)
	}
	mustPut(t, s, "ee", 1000) // 5060 bytes: over budget
	s.RunGC()

	// LRU back-to-front was bb, cc, dd, aa, ee; draining to the 2500-byte
	// low-water mark evicts bb, cc, dd.
	for _, h := range []string{"bb", "cc", "dd"} {
		if present(t, s, h) {
			t.Fatalf("cold entry %s survived", h)
		}
	}
	for _, h := range []string{"aa", "ee"} {
		if !present(t, s, h) {
			t.Fatalf("hot entry %s evicted", h)
		}
	}
	if got := s.GCBytes(); got != 2*entrySize(1000) {
		t.Fatalf("GCBytes = %d, want %d", got, 2*entrySize(1000))
	}
	if got := s.Metrics().GCEvictions.Value(); got != 3 {
		t.Fatalf("evictions = %v, want 3", got)
	}
	// Evicted entries read as clean misses, not errors.
	if p, err := s.Get("stable", "bb"); err != nil || p != nil {
		t.Fatalf("evicted entry read = (%v, %v), want clean miss", p, err)
	}
}

func TestGCNeverEvictsPinned(t *testing.T) {
	s := gcStore(t, 2000, 0.9)
	mustPut(t, s, "aa", 1000)
	s.Pin("stable", "aa")
	mustPut(t, s, "bb", 1000)
	mustPut(t, s, "cc", 1000)
	s.RunGC()
	if !present(t, s, "aa") {
		t.Fatal("pinned entry evicted")
	}
	// Everything unpinned went; aa alone is under the low-water mark.
	if present(t, s, "bb") || present(t, s, "cc") {
		t.Fatal("unpinned entries survived under pressure")
	}

	s.Unpin("stable", "aa")
	mustPut(t, s, "dd", 1000)
	s.RunGC()
	if present(t, s, "aa") {
		t.Fatal("unpinned entry not evicted")
	}
	if !present(t, s, "dd") {
		t.Fatal("fresh entry evicted instead of the unpinned one")
	}
}

func TestGCScanOnStartOrdersByMtime(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	for i, h := range []string{"newest", "oldest", "middle"} {
		mustPut(t, s, h, 1000)
		var age time.Duration
		switch h {
		case "oldest":
			age = 3 * time.Hour
		case "middle":
			age = 2 * time.Hour
		case "newest":
			age = time.Hour
		}
		mt := base.Add(-age)
		if err := os.Chtimes(filepath.Join(dir, "stable", h), mt, mt); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	// A stray temp file must be ignored by the scan.
	if err := os.WriteFile(filepath.Join(dir, "stable", ".junk.tmp1"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.EnableGC(GCOptions{MaxBytes: 2900, LowWater: 0.7, Interval: -1}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseGC)
	if got := s.GCBytes(); got != 3*entrySize(1000) {
		t.Fatalf("scan tracked %d bytes, want %d (temp file leaked in?)", got, 3*entrySize(1000))
	}
	s.RunGC()
	// 3036 > 2900; draining to 2030 evicts exactly the oldest mtime.
	if present(t, s, "oldest") {
		t.Fatal("oldest entry survived")
	}
	if !present(t, s, "middle") || !present(t, s, "newest") {
		t.Fatal("younger entry evicted before the oldest")
	}
}

func TestGCDeleteFailpointSkipsAndRetries(t *testing.T) {
	if err := faultinject.Configure(faultinject.PointStoreDelete + "=at:1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	s := gcStore(t, 2000, 0.9)
	mustPut(t, s, "aa", 1000)
	mustPut(t, s, "bb", 1000) // over budget: 2024 > 2000
	s.RunGC()

	// The first delete attempt (oldest entry, aa) failed; the pass skipped
	// it and evicted bb instead.
	if !present(t, s, "aa") {
		t.Fatal("entry whose delete failed was dropped")
	}
	if present(t, s, "bb") {
		t.Fatal("next victim not evicted after the failed delete")
	}
	if got := s.Metrics().GCErrors.Value(); got != 1 {
		t.Fatalf("gc errors = %v, want 1", got)
	}
	// aa is still tracked: new pressure retries and evicts it now that the
	// failpoint is exhausted.
	mustPut(t, s, "cc", 1000)
	s.RunGC()
	if present(t, s, "aa") {
		t.Fatal("failed delete not retried on the next pass")
	}
	if got := s.Metrics().GCEvictions.Value(); got != 2 {
		t.Fatalf("evictions = %v, want 2", got)
	}
}

func TestGCDisabledIsInert(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "aa", 1000)
	s.Pin("stable", "aa")
	s.Unpin("stable", "aa")
	s.RunGC()
	s.CloseGC()
	if got := s.GCBytes(); got != 0 {
		t.Fatalf("GCBytes without GC = %d, want 0", got)
	}
	if !present(t, s, "aa") {
		t.Fatal("ungoverned store evicted an entry")
	}
}

func TestGCBackgroundEviction(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableGC(GCOptions{MaxBytes: 2000, LowWater: 0.9, Interval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseGC)
	mustPut(t, s, "aa", 1000)
	mustPut(t, s, "bb", 1000) // over budget: the Put kicks the background pass
	deadline := time.Now().Add(5 * time.Second)
	for s.GCBytes() > 1800 {
		if time.Now().After(deadline) {
			t.Fatalf("background GC never drained the store (at %d bytes)", s.GCBytes())
		}
		time.Sleep(time.Millisecond)
	}
	if present(t, s, "aa") {
		t.Fatal("background pass spared the oldest entry")
	}
	if !present(t, s, "bb") {
		t.Fatal("background pass evicted the newest entry")
	}
}

func TestGCForgetsDeletedAndCorruptEntries(t *testing.T) {
	s := gcStore(t, 1<<20, 0.9)
	mustPut(t, s, "aa", 1000)
	mustPut(t, s, "bb", 1000)
	if err := s.Delete("stable", "aa"); err != nil {
		t.Fatal(err)
	}
	if got := s.GCBytes(); got != entrySize(1000) {
		t.Fatalf("GCBytes after delete = %d, want %d", got, entrySize(1000))
	}
	// Corrupt bb on disk; the corrupt-read delete must also untrack it.
	p := filepath.Join(s.Dir(), "stable", "bb")
	if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("stable", "bb"); err == nil {
		t.Fatal("corrupt read did not error")
	}
	if got := s.GCBytes(); got != 0 {
		t.Fatalf("GCBytes after corrupt delete = %d, want 0", got)
	}
}
