package store

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// GCOptions configures the store's size governance (EnableGC).
type GCOptions struct {
	// MaxBytes is the on-disk budget. When the store grows past it, the GC
	// evicts least-recently-used entries until it is back under
	// LowWater×MaxBytes. Must be positive.
	MaxBytes int64
	// LowWater is the fraction of MaxBytes to drain down to once a pass
	// starts, so the GC does hysteresis instead of evicting one entry per
	// Put at the boundary (0 = 0.9).
	LowWater float64
	// Interval is the background pass period (0 = 5s). Puts additionally
	// kick a pass as soon as the budget is exceeded. Negative disables the
	// background goroutine entirely — passes then run only through RunGC,
	// which tests use to keep eviction order deterministic.
	Interval time.Duration
}

func (o GCOptions) withDefaults() GCOptions {
	if o.LowWater <= 0 || o.LowWater > 1 {
		o.LowWater = 0.9
	}
	if o.Interval == 0 {
		o.Interval = 5 * time.Second
	}
	return o
}

// gcEntry is one tracked on-disk entry.
type gcEntry struct {
	kind, hash string
	size       int64
	pins       int
	elem       *list.Element
}

// gcState is the store's LRU index plus the background eviction loop.
type gcState struct {
	store *Store
	opts  GCOptions

	mu      sync.Mutex
	entries map[string]*gcEntry
	lru     *list.List // *gcEntry; front = most recently used
	total   int64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// EnableGC turns on size governance: the store keeps an in-memory LRU
// index of every on-disk entry (rebuilt by a scan at enable time, ordered
// by file mtime) and a background goroutine evicts least-recently-used,
// unpinned entries whenever the total exceeds opts.MaxBytes. Eviction is
// safe against concurrent readers: entries are whole-file reads, so a Get
// racing an unlink either sees the complete old bytes or a clean miss —
// never a torn artifact.
//
// EnableGC must be called once, before the store is shared across
// goroutines, and pairs with CloseGC.
func (s *Store) EnableGC(opts GCOptions) error {
	if opts.MaxBytes <= 0 {
		return errors.New("store: gc MaxBytes must be positive")
	}
	if s.gc.Load() != nil {
		return errors.New("store: gc already enabled")
	}
	g := &gcState{
		store:   s,
		opts:    opts.withDefaults(),
		entries: make(map[string]*gcEntry),
		lru:     list.New(),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if err := g.scan(); err != nil {
		return err
	}
	s.gc.Store(g)
	if g.opts.Interval < 0 {
		close(g.done) // manual mode: no goroutine for CloseGC to join
		return nil
	}
	go g.loop()
	g.kickAsync()
	return nil
}

// CloseGC stops the background eviction goroutine and drops the index.
// The store keeps working, just ungoverned.
func (s *Store) CloseGC() {
	g := s.gc.Load()
	if g == nil {
		return
	}
	s.gc.Store(nil)
	close(g.stop)
	<-g.done
}

// RunGC executes one synchronous eviction pass (tests and shutdown paths;
// the background goroutine runs the same pass on its own schedule).
func (s *Store) RunGC() {
	if g := s.gc.Load(); g != nil {
		g.pass()
	}
}

// GCBytes reports the index's view of the store's on-disk size, 0 when
// governance is disabled.
func (s *Store) GCBytes() int64 {
	g := s.gc.Load()
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// Pin marks (kind, hash) as in use: the GC will not evict it until a
// matching Unpin. Pinning a not-yet-written entry is allowed — the engine
// pins around a peer-fetch write-through so the artifact cannot be evicted
// between the Put and the read that needs it. No-op when GC is disabled.
func (s *Store) Pin(kind, hash string) {
	g := s.gc.Load()
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.get(kind, hash).pins++
}

// Unpin releases a Pin. No-op when GC is disabled.
func (s *Store) Unpin(kind, hash string) {
	g := s.gc.Load()
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if e := g.entries[kind+"/"+hash]; e != nil && e.pins > 0 {
		e.pins--
	}
}

// scan walks the store directory and builds the LRU index, oldest mtime at
// the back, so a restarted server starts evicting from genuinely cold
// entries instead of treating everything as fresh.
func (g *gcState) scan() error {
	type scanned struct {
		kind, hash string
		size       int64
		mtime      time.Time
	}
	var found []scanned
	kinds, err := os.ReadDir(g.store.dir)
	if err != nil {
		return fmt.Errorf("store: gc scan: %w", err)
	}
	for _, kd := range kinds {
		if !kd.IsDir() || !validKey(kd.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(g.store.dir, kd.Name()))
		if err != nil {
			return fmt.Errorf("store: gc scan: %w", err)
		}
		for _, f := range files {
			// Temp files carry a "." prefix and fail validKey; skip them
			// along with anything else that is not a store entry.
			if f.IsDir() || !validKey(f.Name()) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue // deleted mid-scan
			}
			found = append(found, scanned{kd.Name(), f.Name(), info.Size(), info.ModTime()})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found { // oldest pushed first ends up at the back
		e := &gcEntry{kind: f.kind, hash: f.hash, size: f.size}
		e.elem = g.lru.PushFront(e)
		g.entries[f.kind+"/"+f.hash] = e
		g.total += f.size
	}
	return nil
}

// get returns the tracked entry for (kind, hash), creating a zero-size
// placeholder at the LRU front if unknown. Caller holds g.mu.
func (g *gcState) get(kind, hash string) *gcEntry {
	key := kind + "/" + hash
	e := g.entries[key]
	if e == nil {
		e = &gcEntry{kind: kind, hash: hash}
		e.elem = g.lru.PushFront(e)
		g.entries[key] = e
	}
	return e
}

// record notes a write (or an observed read) of size bytes and moves the
// entry to the LRU front.
func (g *gcState) record(kind, hash string, size int64) {
	g.mu.Lock()
	e := g.get(kind, hash)
	g.total += size - e.size
	e.size = size
	g.lru.MoveToFront(e.elem)
	over := g.total > g.opts.MaxBytes
	g.mu.Unlock()
	if over {
		g.kickAsync()
	}
}

// forget drops an entry from the index (caller deleted the file).
func (g *gcState) forget(kind, hash string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := kind + "/" + hash
	if e := g.entries[key]; e != nil {
		g.total -= e.size
		g.lru.Remove(e.elem)
		delete(g.entries, key)
	}
}

// kickAsync requests a pass without blocking (coalesces with any pending
// request).
func (g *gcState) kickAsync() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// loop is the background eviction goroutine.
func (g *gcState) loop() {
	defer close(g.done)
	t := time.NewTicker(g.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-g.kick:
		case <-t.C:
		}
		g.pass()
	}
}

// pass evicts LRU entries until the store is back under the low-water
// mark. Pinned entries are skipped; a failed delete (including the
// store.delete failpoint) is counted, skipped for this pass and retried
// on the next one.
func (g *gcState) pass() {
	m := g.store.metrics
	m.GCRuns.Inc()
	g.mu.Lock()
	over := g.total > g.opts.MaxBytes
	g.mu.Unlock()
	if !over {
		return
	}
	low := int64(g.opts.LowWater * float64(g.opts.MaxBytes))
	failed := make(map[*gcEntry]bool)
	for {
		g.mu.Lock()
		if g.total <= low {
			g.mu.Unlock()
			return
		}
		var victim *gcEntry
		for el := g.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*gcEntry)
			if e.pins > 0 || failed[e] {
				continue
			}
			victim = e
			break
		}
		if victim == nil { // everything left is pinned or failed this pass
			g.mu.Unlock()
			return
		}
		// Delete under the lock so a Pin cannot race in between the
		// decision and the unlink; concurrent Gets are lock-free and rely
		// on whole-file read-vs-unlink atomicity instead.
		err := faultinject.Hit(faultinject.PointStoreDelete)
		if err == nil {
			p := filepath.Join(g.store.dir, victim.kind, victim.hash)
			if rmErr := os.Remove(p); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
				err = rmErr
			}
		}
		if err != nil {
			failed[victim] = true
			g.mu.Unlock()
			m.GCErrors.Inc()
			continue
		}
		g.total -= victim.size
		g.lru.Remove(victim.elem)
		delete(g.entries, victim.kind+"/"+victim.hash)
		g.mu.Unlock()
		m.GCEvictions.Inc()
	}
}
