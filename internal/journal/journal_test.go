package journal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics/testutil"
	"repro/internal/sweep"
)

func cell(i int) sweep.CellResult {
	return sweep.CellResult{Index: i, Protocol: "binary:5", Size: 5, Kind: "stable", OK: true}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Sweep("abc123")
	if err != nil {
		t.Fatal(err)
	}
	if j.Started() || j.Done() || len(j.Completed()) != 0 {
		t.Fatal("fresh journal is not empty")
	}
	if err := j.Start(4); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRange("w1", []sweep.IndexRange{{From: 0, To: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendCell(cell(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate appends are ignored, not re-journaled.
	if err := j.AppendCell(cell(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s2.Sweep("abc123")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Started() {
		t.Fatal("replay lost the start record")
	}
	if j2.Done() {
		t.Fatal("journal done without a done record")
	}
	got := j2.Completed()
	if len(got) != 3 {
		t.Fatalf("replayed %d cells, want 3", len(got))
	}
	for i, cr := range got {
		if cr.Index != i || cr.Protocol != "binary:5" || !cr.OK {
			t.Fatalf("cell %d replayed wrong: %+v", i, cr)
		}
	}
	if v := testutil.ToFloat64(s2.Metrics().Recoveries); v != 1 {
		t.Fatalf("recoveries = %v, want 1", v)
	}
	if err := j2.AppendDone(); err != nil {
		t.Fatal(err)
	}
	if !j2.Done() {
		t.Fatal("AppendDone did not mark done")
	}
}

func TestDoneSurvivesReplay(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.Sweep("deadbeef")
	j.Start(1)
	j.AppendCell(cell(0))
	j.AppendDone()
	j.Close()
	j2, err := s.Sweep("deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Done() || len(j2.Completed()) != 1 {
		t.Fatal("done journal did not replay as done")
	}
}

// TestTornTailTruncated pins crash repair: a partial record at the tail —
// what a kill -9 mid-append leaves — is cut on replay, and the cells
// before it survive.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	j, _ := s.Sweep("feed01")
	j.Start(3)
	j.AppendCell(cell(0))
	j.AppendCell(cell(1))
	j.Close()

	path := filepath.Join(dir, "feed01.wal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"torn write":  func(b []byte) []byte { return b[:len(b)-5] },
		"flipped bit": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 1; return c },
		"huge length": func(b []byte) []byte { return append(append([]byte(nil), b...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			s2, _ := Open(dir)
			j2, err := s2.Sweep("feed01")
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			// The flipped bit corrupts the last cell record; the torn write
			// and appended garbage leave both intact.
			if n := len(j2.Completed()); n == 0 || n > 2 {
				t.Fatalf("replayed %d cells after corruption, want 1 or 2", n)
			}
			if v := testutil.ToFloat64(s2.Metrics().Truncations); v != 1 {
				t.Fatalf("truncations = %v, want 1", v)
			}
			// The repaired journal accepts appends and replays cleanly.
			if err := j2.AppendCell(cell(2)); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			s3, _ := Open(dir)
			j3, err := s3.Sweep("feed01")
			if err != nil {
				t.Fatal(err)
			}
			if v := testutil.ToFloat64(s3.Metrics().Truncations); v != 0 {
				t.Fatal("repaired journal replayed dirty")
			}
			j3.Close()
			// Restore the pristine file for the next sub-test.
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentOpenRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	j, err := s.Sweep("aa11")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep("aa11"); err == nil {
		t.Fatal("second open of an in-progress sweep succeeded")
	}
	j.Close()
	j2, err := s.Sweep("aa11")
	if err != nil {
		t.Fatalf("reopen after close failed: %v", err)
	}
	j2.Close()
}

func TestInvalidHashRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	for _, h := range []string{"", "UPPER", "../escape", "a/b", "has space"} {
		if _, err := s.Sweep(h); err == nil {
			t.Fatalf("hash %q accepted", h)
		}
	}
}

// TestAppendFaultInjection pins the failpoints: an injected journal.append
// or journal.sync error surfaces to the caller and counts as an append
// error, and the journal stays usable for the next append.
func TestAppendFaultInjection(t *testing.T) {
	s, _ := Open(t.TempDir())
	j, _ := s.Sweep("bb22")
	defer j.Close()
	if err := j.Start(2); err != nil {
		t.Fatal(err)
	}

	for _, point := range []string{faultinject.PointJournalAppend, faultinject.PointJournalSync} {
		if err := faultinject.Configure(point + "=at:1"); err != nil {
			t.Fatal(err)
		}
		err := j.AppendCell(cell(0))
		faultinject.Disable()
		if err == nil {
			t.Fatalf("%s fault not surfaced", point)
		}
		// The failed cell was not marked seen: the retry goes through.
		if err := j.AppendCell(cell(0)); err != nil {
			t.Fatalf("append after %s fault: %v", point, err)
		}
		j.seen = map[int]bool{}
	}
	if v := testutil.ToFloat64(s.Metrics().AppendErrors); v != 2 {
		t.Fatalf("append errors = %v, want 2", v)
	}
}
