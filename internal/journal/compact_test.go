package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sweep"
)

// writeSweep journals a start, n cells and (optionally) a done record
// under hash, then closes it.
func writeSweep(t *testing.T, s *Store, hash string, n int, done bool) {
	t.Helper()
	j, err := s.Sweep(hash)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Start(n); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRange("w1", []sweep.IndexRange{{From: 0, To: n - 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.AppendCell(cell(i)); err != nil {
			t.Fatal(err)
		}
	}
	if done {
		if err := j.AppendDone(); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func walSize(t *testing.T, s *Store, hash string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(s.Dir(), hash+".wal"))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestCompactStubsDoneWALs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "donesweep", 8, true)
	writeSweep(t, s, "livesweep", 8, false)
	liveBefore := walSize(t, s, "livesweep")

	stats, err := s.Compact(Retention{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted != 1 || stats.Removed != 0 {
		t.Fatalf("stats = %+v, want 1 compaction, 0 removals", stats)
	}
	// The stub replays as started+done with zero completed cells, so a
	// resubmission re-executes the whole (deterministic) grid.
	j, err := s.Sweep("donesweep")
	if err != nil {
		t.Fatal(err)
	}
	if !j.Started() || !j.Done() {
		t.Fatalf("stub replay: started=%v done=%v, want both", j.Started(), j.Done())
	}
	if len(j.Completed()) != 0 {
		t.Fatalf("stub replay carries %d cells, want 0", len(j.Completed()))
	}
	// Re-sealing a replayed-done journal is a no-op, not a duplicate record.
	sealed := walSize(t, s, "donesweep")
	if err := j.AppendDone(); err != nil {
		t.Fatal(err)
	}
	if got := walSize(t, s, "donesweep"); got != sealed {
		t.Fatalf("AppendDone on a sealed journal grew the WAL %d → %d", sealed, got)
	}
	j.Close()

	// The in-progress WAL was untouched, byte for byte.
	if got := walSize(t, s, "livesweep"); got != liveBefore {
		t.Fatalf("in-progress WAL size changed %d → %d", liveBefore, got)
	}
	j2, err := s.Sweep("livesweep")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() || len(j2.Completed()) != 8 {
		t.Fatalf("in-progress replay: done=%v cells=%d, want live with 8 cells", j2.Done(), len(j2.Completed()))
	}
	if got := s.Metrics().Compactions.Value(); got != 1 {
		t.Fatalf("compactions metric = %v, want 1", got)
	}
	// A second pass finds only stubs and in-progress WALs: nothing to do.
	stats, err = s.Compact(Retention{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted != 0 || stats.Removed != 0 {
		t.Fatalf("idempotent pass stats = %+v, want no-op", stats)
	}
}

func TestCompactSkipsBusySweeps(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "donesweep", 4, true)
	before := walSize(t, s, "donesweep")
	j, err := s.Sweep("donesweep")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	stats, err := s.Compact(Retention{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedBusy != 1 || stats.Compacted != 0 {
		t.Fatalf("stats = %+v, want the open sweep skipped", stats)
	}
	if got := walSize(t, s, "donesweep"); got != before {
		t.Fatalf("open sweep's WAL changed %d → %d", before, got)
	}
}

func TestCompactAgesOutOldDoneWALs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "oldsweep", 4, true)
	writeSweep(t, s, "newsweep", 4, true)
	writeSweep(t, s, "oldlive", 4, false)
	base := time.Now()
	for _, h := range []string{"oldsweep", "oldlive"} {
		old := base.Add(-48 * time.Hour)
		if err := os.Chtimes(filepath.Join(s.Dir(), h+".wal"), old, old); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := s.Compact(Retention{Retain: 24 * time.Hour, Now: func() time.Time { return base }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 || stats.Compacted != 1 {
		t.Fatalf("stats = %+v, want oldsweep removed and newsweep stubbed", stats)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "oldsweep.wal")); !os.IsNotExist(err) {
		t.Fatal("aged-out done WAL still on disk")
	}
	// Age never applies to in-progress sweeps, however old.
	if _, err := os.Stat(filepath.Join(s.Dir(), "oldlive.wal")); err != nil {
		t.Fatal("aged in-progress WAL was deleted")
	}
	if got := s.Metrics().Retired.Value(); got != 1 {
		t.Fatalf("retired metric = %v, want 1", got)
	}
}

func TestCompactStubPreservesMtimeForRetention(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "donesweep", 4, true)
	base := time.Now()
	old := base.Add(-20 * time.Hour)
	if err := os.Chtimes(filepath.Join(s.Dir(), "donesweep.wal"), old, old); err != nil {
		t.Fatal(err)
	}
	clock := func() time.Time { return base }
	if _, err := s.Compact(Retention{Retain: 24 * time.Hour, Now: clock}); err != nil {
		t.Fatal(err)
	}
	// The stub inherited the completion-era mtime: 5 more hours pushes it
	// past the retention window even though the stub file is brand new.
	later := func() time.Time { return base.Add(5 * time.Hour) }
	stats, err := s.Compact(Retention{Retain: 24 * time.Hour, Now: later})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 {
		t.Fatalf("stats = %+v, want the stub aged out on original mtime", stats)
	}
}

func TestCompactSizeBudgetRemovesOldestDoneFirst(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Three done sweeps plus one in-progress; mtimes staggered so "aa" is
	// the oldest done WAL.
	base := time.Now()
	for i, h := range []string{"aa", "bb", "cc"} {
		writeSweep(t, s, h, 4, true)
		mt := base.Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(s.Dir(), h+".wal"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	writeSweep(t, s, "live", 64, false)
	liveSize := walSize(t, s, "live")

	// Budget below the live WAL alone: every done stub must go, the live
	// WAL must survive.
	stats, err := s.Compact(Retention{MaxBytes: liveSize - 1, Now: func() time.Time { return base }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 3 {
		t.Fatalf("stats = %+v, want all 3 done WALs removed", stats)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "live.wal")); err != nil {
		t.Fatal("in-progress WAL sacrificed to the size budget")
	}

	// A generous budget removes only the oldest done WAL.
	s2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range []string{"aa", "bb", "cc"} {
		writeSweep(t, s2, h, 4, true)
		mt := base.Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(s2.Dir(), h+".wal"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	pre, err := s2.Compact(Retention{Now: func() time.Time { return base }}) // stub first, to learn sizes
	if err != nil {
		t.Fatal(err)
	}
	if pre.Compacted != 3 {
		t.Fatalf("setup pass stats = %+v, want 3 stubs", pre)
	}
	total := walSize(t, s2, "aa") + walSize(t, s2, "bb") + walSize(t, s2, "cc")
	stats, err = s2.Compact(Retention{MaxBytes: total - 1, Now: func() time.Time { return base }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 {
		t.Fatalf("stats = %+v, want exactly one removal", stats)
	}
	if _, err := os.Stat(filepath.Join(s2.Dir(), "aa.wal")); !os.IsNotExist(err) {
		t.Fatal("size budget did not remove the oldest done WAL")
	}
	for _, h := range []string{"bb", "cc"} {
		if _, err := os.Stat(filepath.Join(s2.Dir(), h+".wal")); err != nil {
			t.Fatalf("size budget removed younger WAL %s", h)
		}
	}
}
