package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Retention is the journal store's compaction policy.
type Retention struct {
	// Retain ages out completed sweeps: a done WAL whose mtime is older
	// than Retain is deleted outright (0 = keep forever).
	Retain time.Duration
	// MaxBytes bounds the journal directory: past it, the oldest done WALs
	// are deleted until the directory fits (0 = unbounded). In-progress
	// WALs never count against deletion — only compaction's size budget
	// cannot shrink them.
	MaxBytes int64
	// Now overrides the clock (tests).
	Now func() time.Time
}

// CompactStats reports what one Compact pass did.
type CompactStats struct {
	// Compacted counts done WALs rewritten to terse stubs.
	Compacted int
	// Removed counts done WALs deleted (aged out or over budget).
	Removed int
	// SkippedBusy counts WALs left alone because their sweep was open.
	SkippedBusy int
	// Bytes is the directory's WAL footprint after the pass.
	Bytes int64
}

// walInfo is one WAL's scan summary.
type walInfo struct {
	hash   string
	path   string
	size   int64
	mtime  time.Time
	clean  bool // no torn or corrupt tail
	done   bool
	total  int
	extras int // range + cell records a stub would drop
}

// Compact shrinks the journal directory under the given policy. Completed
// sweeps' WALs are rewritten to a two-record stub (start + done) — replay
// of a stub reports the sweep done with zero completed cells, so a
// resubmission re-executes the whole grid, which is deterministic and
// therefore byte-identical to the archived run. Aged-out and over-budget
// done WALs are deleted entirely. In-progress WALs — no done record, or a
// corrupt tail awaiting replay repair — are never touched, and a sweep
// that is open right now is skipped, so compaction can run on any schedule
// next to live traffic.
func (s *Store) Compact(r Retention) (CompactStats, error) {
	now := time.Now
	if r.Now != nil {
		now = r.Now
	}
	var stats CompactStats
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return stats, fmt.Errorf("journal: compact: %w", err)
	}
	var done []walInfo // candidates for the size budget, oldest first
	for _, e := range entries {
		name := e.Name()
		hash, ok := strings.CutSuffix(name, ".wal")
		if e.IsDir() || !ok || !validHash(hash) {
			continue
		}
		info, skipped := s.compactOne(hash, now(), r.Retain, &stats)
		if skipped {
			continue
		}
		stats.Bytes += info.size
		if info.clean && info.done {
			done = append(done, info)
		}
	}
	if r.MaxBytes > 0 && stats.Bytes > r.MaxBytes {
		sort.Slice(done, func(i, j int) bool { return done[i].mtime.Before(done[j].mtime) })
		for _, info := range done {
			if stats.Bytes <= r.MaxBytes {
				break
			}
			if !s.claim(info.hash) {
				stats.SkippedBusy++
				continue
			}
			err := os.Remove(info.path)
			s.release(info.hash)
			if err != nil && !errors.Is(err, os.ErrNotExist) {
				return stats, fmt.Errorf("journal: compact: %w", err)
			}
			stats.Bytes -= info.size
			stats.Removed++
			s.metrics.Retired.Inc()
		}
	}
	return stats, nil
}

// claim marks hash busy iff it is not already (the same exclusivity Sweep
// takes), so compaction never races a live sweep on one WAL.
func (s *Store) claim(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy[hash] {
		return false
	}
	s.busy[hash] = true
	return true
}

func (s *Store) release(hash string) {
	s.mu.Lock()
	delete(s.busy, hash)
	s.mu.Unlock()
}

// compactOne handles one WAL under the claim: scan, then age out or stub.
// It reports the WAL's post-pass state, or skipped=true when the sweep was
// open or the file vanished mid-pass.
func (s *Store) compactOne(hash string, now time.Time, retain time.Duration, stats *CompactStats) (walInfo, bool) {
	if !s.claim(hash) {
		stats.SkippedBusy++
		return walInfo{}, true
	}
	defer s.release(hash)

	path := filepath.Join(s.dir, hash+".wal")
	info, err := scanWAL(path)
	if err != nil {
		return walInfo{}, true // vanished or unreadable; not ours to manage
	}
	info.hash = hash
	if !info.clean || !info.done {
		return info, false // in progress (or awaiting tail repair): untouchable
	}
	if retain > 0 && now.Sub(info.mtime) > retain {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return info, false
		}
		stats.Removed++
		s.metrics.Retired.Inc()
		return walInfo{}, true
	}
	if info.extras == 0 {
		return info, false // already a stub
	}
	if err := writeStub(path, hash, info.total, info.mtime); err != nil {
		return info, false // keep the full WAL; nothing lost
	}
	if st, err := os.Stat(path); err == nil {
		info.size = st.Size()
	}
	info.extras = 0
	stats.Compacted++
	s.metrics.Compactions.Inc()
	return info, false
}

// scanWAL reads a WAL without side effects (no truncation — that is
// replay's job) and summarizes it.
func scanWAL(path string) (walInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return walInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return walInfo{}, err
	}
	info := walInfo{path: path, size: st.Size(), mtime: st.ModTime(), clean: true}
	var header [8]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return info, nil
			}
			info.clean = false
			return info, nil
		}
		n := binary.LittleEndian.Uint32(header[:4])
		if n == 0 || n > maxRecord {
			info.clean = false
			return info, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			info.clean = false
			return info, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(header[4:]) {
			info.clean = false
			return info, nil
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			info.clean = false
			return info, nil
		}
		switch rec.Type {
		case "start":
			if info.total == 0 {
				info.total = rec.Total
			}
		case "done":
			info.done = true
		case "range", "cell":
			info.extras++
		}
	}
}

// writeStub atomically replaces a done WAL with its two-record stub,
// preserving the original mtime so age-based retention still sees the
// sweep's completion time, not the compaction's.
func writeStub(path, hash string, total int, mtime time.Time) error {
	var buf []byte
	for _, rec := range []record{
		{Type: "start", Spec: hash, Total: total},
		{Type: "done"},
	} {
		frame, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+hash+".stub*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(buf); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chtimes(tmp, mtime, mtime); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
