// Package journal is the coordinator's durable sweep log: an append-only,
// CRC-framed, fsync'd write-ahead file per sweep spec (keyed by the
// spec's content hash) recording each dispatched range and each completed
// cell. After a crash, reopening the journal replays the completed cells,
// so the coordinator re-emits them verbatim and executes only the rest —
// grid indices and per-cell seeds are split-stable, which is what makes
// the resumed run's canonical output byte-identical to an uninterrupted
// one.
//
// File format: one file per sweep at <dir>/<specHash>.wal, a sequence of
// records framed
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// where each payload is one JSON record ({"type": "start" | "range" |
// "cell" | "done", ...}). Replay stops at the first torn or corrupt
// record and truncates the file there — the tail a crash mid-append
// leaves behind is repaired, never trusted. Appends fsync before
// returning, so a record the coordinator acted on (streamed to a client)
// survives a kill -9.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// maxRecord caps one record at 64 MiB, so a corrupt length prefix cannot
// drive a giant allocation during replay.
const maxRecord = 64 << 20

// Store manages the journals of one directory, at most one open Sweep per
// spec hash at a time.
type Store struct {
	dir     string
	metrics *Metrics

	mu   sync.Mutex
	busy map[string]bool
}

// Metrics is the journal's instrumentation (pp_journal_* families).
type Metrics struct {
	// Appends counts records appended, by record type.
	Appends *metrics.CounterVec
	// AppendErrors counts failed appends (write or fsync).
	AppendErrors *metrics.Counter
	// ReplayedCells counts completed cells recovered from disk on open.
	ReplayedCells *metrics.Counter
	// Recoveries counts journal opens that found prior progress.
	Recoveries *metrics.Counter
	// Truncations counts corrupt or torn journal tails repaired on open.
	Truncations *metrics.Counter
	// Compactions counts done WALs rewritten to stubs by Compact.
	Compactions *metrics.Counter
	// Retired counts done WALs deleted by retention (age or size budget).
	Retired *metrics.Counter
}

func newJournalMetrics() *Metrics {
	sub := func(name, help string) metrics.Opts {
		return metrics.Opts{Namespace: "pp", Subsystem: "journal", Name: name, Help: help}
	}
	return &Metrics{
		Appends: metrics.NewCounterVec(
			sub("appends_total", "Journal records appended, by record type."),
			[]string{"type"}),
		AppendErrors: metrics.NewCounter(
			sub("append_errors_total", "Journal appends that failed to write or sync.")),
		ReplayedCells: metrics.NewCounter(
			sub("replayed_cells_total", "Completed cells recovered from journals on open.")),
		Recoveries: metrics.NewCounter(
			sub("recoveries_total", "Journal opens that found prior sweep progress.")),
		Truncations: metrics.NewCounter(
			sub("truncations_total", "Corrupt or torn journal tails truncated during replay.")),
		Compactions: metrics.NewCounter(
			sub("compactions_total", "Completed sweep WALs rewritten to stubs.")),
		Retired: metrics.NewCounter(
			sub("retired_total", "Completed sweep WALs deleted by retention policy.")),
	}
}

// Metrics returns the store's instrumentation.
func (s *Store) Metrics() *Metrics { return s.metrics }

// Collectors returns every collector of the set, for registration.
func (m *Metrics) Collectors() []metrics.Collector {
	return []metrics.Collector{m.Appends, m.AppendErrors, m.ReplayedCells, m.Recoveries, m.Truncations, m.Compactions, m.Retired}
}

// Register registers the whole set into reg.
func (m *Metrics) Register(reg *metrics.Registry) { reg.MustRegister(m.Collectors()...) }

// Open roots a journal store at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Store{dir: dir, metrics: newJournalMetrics(), busy: make(map[string]bool)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func validHash(h string) bool {
	if h == "" || len(h) > 128 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if !('a' <= c && c <= 'z' || '0' <= c && c <= '9') {
			return false
		}
	}
	return true
}

// record is the JSON payload of one journal entry.
type record struct {
	// Type is "start", "range", "cell" or "done".
	Type string `json:"type"`
	// Spec (start) echoes the spec hash; Total (start) the grid size.
	Spec  string `json:"spec,omitempty"`
	Total int    `json:"total,omitempty"`
	// Worker and Cells describe a dispatched range.
	Worker string             `json:"worker,omitempty"`
	Cells  []sweep.IndexRange `json:"cells,omitempty"`
	// Cell is a completed cell's full result — replay re-emits it
	// verbatim, which is what keeps resumed output byte-identical.
	Cell *sweep.CellResult `json:"cell,omitempty"`
}

// Sweep is one open sweep journal: the replayed state plus an append
// handle. Appends are serialized internally; a Sweep belongs to one sweep
// execution at a time (Store.Sweep enforces this in-process).
type Sweep struct {
	store *Store
	hash  string

	mu     sync.Mutex
	f      *os.File
	closed bool

	completed []sweep.CellResult
	seen      map[int]bool
	done      bool
	started   bool
}

// Sweep opens (or creates) the journal of one sweep spec and replays it.
// A second Sweep for the same hash before Close errors: concurrent
// executions of one spec would interleave appends.
func (s *Store) Sweep(specHash string) (*Sweep, error) {
	if !validHash(specHash) {
		return nil, fmt.Errorf("journal: invalid spec hash %q", specHash)
	}
	s.mu.Lock()
	if s.busy[specHash] {
		s.mu.Unlock()
		return nil, fmt.Errorf("journal: sweep %s is already in progress", specHash)
	}
	s.busy[specHash] = true
	s.mu.Unlock()

	j, err := s.open(specHash)
	if err != nil {
		s.mu.Lock()
		delete(s.busy, specHash)
		s.mu.Unlock()
		return nil, err
	}
	return j, nil
}

func (s *Store) open(specHash string) (*Sweep, error) {
	path := filepath.Join(s.dir, specHash+".wal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Sweep{store: s, hash: specHash, f: f, seen: make(map[int]bool)}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if len(j.completed) > 0 {
		s.metrics.Recoveries.Inc()
	}
	return j, nil
}

// replay scans the journal from the start, folding records into the
// in-memory state, and truncates at the first corruption.
func (j *Sweep) replay() error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var (
		offset int64
		header [8]byte
	)
	for {
		if _, err := io.ReadFull(j.f, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			// Torn header: a crash mid-append. Repair below.
			return j.truncate(offset)
		}
		n := binary.LittleEndian.Uint32(header[:4])
		if n == 0 || n > maxRecord {
			return j.truncate(offset)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			return j.truncate(offset)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(header[4:]) {
			return j.truncate(offset)
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return j.truncate(offset)
		}
		j.apply(rec)
		offset += 8 + int64(n)
	}
	// Position at the end for appends (ReadFull stopped exactly there on a
	// clean EOF, but be explicit).
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// truncate repairs a corrupt tail: everything before offset replayed
// cleanly and is kept; the tail is cut so the next append extends a valid
// log.
func (j *Sweep) truncate(offset int64) error {
	j.store.metrics.Truncations.Inc()
	if err := j.f.Truncate(offset); err != nil {
		return fmt.Errorf("journal: truncating corrupt tail: %w", err)
	}
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// apply folds one replayed record into the in-memory state. Duplicate
// cell indices keep the first occurrence (appends happen post-dedup, but
// replay never trusts that).
func (j *Sweep) apply(rec record) {
	switch rec.Type {
	case "start":
		j.started = true
	case "cell":
		if rec.Cell != nil && !j.seen[rec.Cell.Index] {
			j.seen[rec.Cell.Index] = true
			j.completed = append(j.completed, *rec.Cell)
			j.store.metrics.ReplayedCells.Inc()
		}
	case "done":
		j.done = true
	}
}

// Completed returns the cells recovered by replay, in append order. The
// caller re-emits them verbatim and must not re-append them.
func (j *Sweep) Completed() []sweep.CellResult { return j.completed }

// Done reports whether a prior run appended its completion record — every
// cell is in Completed and nothing remains to execute.
func (j *Sweep) Done() bool { return j.done }

// Started reports whether the journal carries a start record from a prior
// run.
func (j *Sweep) Started() bool { return j.started }

// Start logs the sweep's start (idempotent: a recovered journal already
// has one).
func (j *Sweep) Start(total int) error {
	if j.started {
		return nil
	}
	if err := j.append(record{Type: "start", Spec: j.hash, Total: total}); err != nil {
		return err
	}
	j.started = true
	return nil
}

// AppendRange logs a dispatched range: which worker got which cell
// indices. Ranges are observability (and post-mortem fodder); resume
// correctness rides on cell records alone.
func (j *Sweep) AppendRange(worker string, cells []sweep.IndexRange) error {
	return j.append(record{Type: "range", Worker: worker, Cells: cells})
}

// AppendCell logs one completed cell, fsync'd: once this returns, the
// cell survives a crash. Duplicate indices (already journaled or
// replayed) are ignored.
func (j *Sweep) AppendCell(cr sweep.CellResult) error {
	j.mu.Lock()
	dup := j.seen[cr.Index]
	j.mu.Unlock()
	if dup {
		return nil
	}
	if err := j.append(record{Type: "cell", Cell: &cr}); err != nil {
		return err
	}
	j.mu.Lock()
	j.seen[cr.Index] = true
	j.mu.Unlock()
	return nil
}

// AppendDone seals the journal: the sweep ran to completion. Idempotent —
// a journal already sealed (replayed done record, e.g. a compacted stub
// whose sweep was re-executed) is not sealed twice.
func (j *Sweep) AppendDone() error {
	if j.done {
		return nil
	}
	if err := j.append(record{Type: "done"}); err != nil {
		return err
	}
	j.done = true
	return nil
}

func (j *Sweep) append(rec record) error {
	err := j.appendLocked(rec)
	if err != nil {
		j.store.metrics.AppendErrors.Inc()
		return err
	}
	j.store.metrics.Appends.WithLabelValues(rec.Type).Inc()
	return nil
}

// encodeRecord frames one record for the WAL (shared by appends and the
// compactor's stub writer).
func encodeRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

func (j *Sweep) appendLocked(rec record) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: append after close")
	}
	if err := faultinject.Hit(faultinject.PointJournalAppend); err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := faultinject.Hit(faultinject.PointJournalSync); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Close releases the journal; the spec hash becomes openable again.
func (j *Sweep) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	err := j.f.Close()
	j.mu.Unlock()
	j.store.mu.Lock()
	delete(j.store.busy, j.hash)
	j.store.mu.Unlock()
	return err
}

// Remove deletes a sweep's journal file (e.g. after a completed sweep's
// results were archived elsewhere). The journal must not be open.
func (s *Store) Remove(specHash string) error {
	if !validHash(specHash) {
		return fmt.Errorf("journal: invalid spec hash %q", specHash)
	}
	s.mu.Lock()
	busy := s.busy[specHash]
	s.mu.Unlock()
	if busy {
		return fmt.Errorf("journal: sweep %s is in progress", specHash)
	}
	if err := os.Remove(filepath.Join(s.dir, specHash+".wal")); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
