// Quickstart: build a population protocol from scratch, verify it exactly,
// and simulate it.
//
// The protocol is the classic 4-state majority: agents start as A or B
// partisans, opposite partisans cancel into passive followers, and
// followers adopt the surviving side's opinion. It computes the predicate
// x_A > x_B by stable consensus.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pp "repro"
	"repro/internal/multiset"
)

func main() {
	// 1. Build the protocol with the Builder API.
	b := pp.NewBuilder("my-majority")
	A := b.AddState("A", 1) // active A partisan, output "yes"
	B := b.AddState("B", 0) // active B partisan, output "no"
	a := b.AddState("a", 1) // passive follower of A
	bb := b.AddState("b", 0)
	b.AddTransition(A, B, a, bb)   // partisans cancel
	b.AddTransition(A, bb, A, a)   // A converts followers
	b.AddTransition(B, a, B, bb)   // B converts followers
	b.AddTransition(a, bb, bb, bb) // tie-break: leftovers side with B
	b.AddInput("x_A", A)
	b.AddInput("x_B", B)
	p, err := b.CompleteWithIdentity().Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)

	// 2. Verify exactly — for every input with up to 10 agents, all fair
	// executions stabilise to the correct answer (bottom-SCC analysis).
	report, err := pp.Verify(p, pp.MajorityPred(), 2, 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact verification:", report)

	// 3. Simulate a larger population under the random scheduler. (Note:
	// this protocol is *exact* under fairness for every input, but its
	// tie-breaking rule makes narrow A-majorities exponentially slow in
	// practice — a decisive margin converges in O(n log n)-ish time. The
	// state-complexity/runtime trade-off is exactly the tension the paper's
	// introduction describes.)
	input := multiset.Vec{700, 100} // 700 As vs 100 Bs
	st, err := pp.Simulate(p, p.InitialConfig(input), pp.SimOptions{Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}
	if !st.Converged {
		fmt.Printf("simulated %v: no consensus within %d interactions\n", input, st.Interactions)
	} else {
		fmt.Printf("simulated %v: stable output %d after %.1f parallel time units\n",
			input, st.Output, st.ParallelTime)
	}

	// 4. The paper's question: how few states could any protocol deciding
	// this kind of predicate have? For thresholds x ≥ η the answer is
	// bounded by Theorem 5.9:
	n, t := int64(p.NumStates()), int64(p.NumTransitions())
	fmt.Printf("Theorem 5.9 bound for %d states: η ≤ %s\n", n, pp.Theorem59Bound(n, t))
}
