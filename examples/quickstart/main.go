// Quickstart: build a population protocol from scratch, then analyse it
// through the pp.Engine request/result API — the same typed model the
// ppserve HTTP daemon speaks.
//
// The protocol is the classic 4-state majority: agents start as A or B
// partisans, opposite partisans cancel into passive followers, and
// followers adopt the surviving side's opinion. It computes the predicate
// x_A > x_B by stable consensus.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	pp "repro"
)

func main() {
	ctx := context.Background()

	// 1. Build the protocol with the Builder API.
	b := pp.NewBuilder("my-majority")
	A := b.AddState("A", 1) // active A partisan, output "yes"
	B := b.AddState("B", 0) // active B partisan, output "no"
	a := b.AddState("a", 1) // passive follower of A
	bb := b.AddState("b", 0)
	b.AddTransition(A, B, a, bb)   // partisans cancel
	b.AddTransition(A, bb, A, a)   // A converts followers
	b.AddTransition(B, a, B, bb)   // B converts followers
	b.AddTransition(a, bb, bb, bb) // tie-break: leftovers side with B
	b.AddInput("x_A", A)
	b.AddInput("x_B", B)
	p, err := b.CompleteWithIdentity().Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)

	// 2. Hand it to the engine as an inline protocol. Requests are plain
	// JSON values — the same bytes work against `ppserve` over HTTP.
	inline, err := json.Marshal(p)
	if err != nil {
		log.Fatal(err)
	}
	eng := pp.NewEngine()
	ref := pp.ProtocolRef{Inline: inline}

	// 3. Verify exactly — for every input with up to 10 agents, all fair
	// executions stabilise to the correct answer (bottom-SCC analysis).
	res, err := eng.Do(ctx, pp.Request{
		Kind:      pp.KindVerify,
		Protocol:  ref,
		Predicate: &pp.PredicateSpec{Kind: "majority"},
		MaxSize:   10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact verification:", res.Verification.Summary)

	// 4. Simulate a larger population under the random scheduler. (Note:
	// this protocol is *exact* under fairness for every input, but its
	// tie-breaking rule makes narrow A-majorities exponentially slow in
	// practice — a decisive margin converges in O(n log n)-ish time. The
	// state-complexity/runtime trade-off is exactly the tension the paper's
	// introduction describes.)
	res, err = eng.Do(ctx, pp.Request{
		Kind:     pp.KindSimulate,
		Protocol: ref,
		Input:    []int64{700, 100}, // 700 As vs 100 Bs
		Seed:     2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	if st := res.Simulation; !st.Converged {
		fmt.Printf("simulated: no consensus within %d interactions\n", st.Interactions)
	} else {
		fmt.Printf("simulated: stable output %d after %.1f parallel time units\n",
			st.Output, st.ParallelTime)
	}

	// 5. The paper's question: how few states could any protocol deciding
	// this kind of predicate have? For thresholds x ≥ η the answer is
	// bounded by Theorem 5.9:
	res, err = eng.Do(ctx, pp.Request{Kind: pp.KindBounds, Protocol: ref})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 5.9 bound for %d states: η ≤ %s\n",
		res.Bounds.States, res.Bounds.Theorem59)
}
