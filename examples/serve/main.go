// Serve example: the ppserve HTTP API end to end in one process.
//
// It mounts the analysis-engine handler (the exact handler `ppserve` runs)
// on an ephemeral port, then drives it with plain JSON requests: a
// simulate, the same request again (served from the engine's content-hash
// cache), and a verify. The request bodies printed below work verbatim
// against a real daemon:
//
//	go run ./cmd/ppserve &
//	curl -s localhost:8080/v1/analyze -d '{"kind":"simulate","protocol":{"spec":"flock:8"},"input":[20]}'
//
// Run with: go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	pp "repro"
	"repro/internal/serve"
)

func main() {
	// An in-process ppserve: the handler over a fresh engine.
	srv := httptest.NewServer(serve.NewHandler(pp.NewEngine(), serve.Options{}))
	defer srv.Close()

	analyze := func(body string) *pp.Result {
		fmt.Printf("POST /v1/analyze %s\n", body)
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json",
			bytes.NewBufferString(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("status %d", resp.StatusCode)
		}
		var res pp.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			log.Fatal(err)
		}
		return &res
	}

	// Simulate the succinct protocol P'_3 (x ≥ 8) on 20 agents, with the
	// exact stable-set oracle for convergence detection.
	res := analyze(`{"kind":"simulate","protocol":{"spec":"succinct:3"},"input":[20],"seed":7,"exactOracle":true}`)
	fmt.Printf("  → output %d after %.1f parallel time units (cacheHit=%t)\n\n",
		res.Simulation.Output, res.Simulation.ParallelTime, res.CacheHit)

	// The same request again: the stable-set analysis is served from the
	// engine's content-hash cache.
	res = analyze(`{"kind":"simulate","protocol":{"spec":"succinct:3"},"input":[20],"seed":8,"exactOracle":true}`)
	fmt.Printf("  → output %d (cacheHit=%t)\n\n", res.Simulation.Output, res.CacheHit)

	// Exact verification of the majority protocol against x_A > x_B.
	res = analyze(`{"kind":"verify","protocol":{"spec":"majority"},"maxSize":8}`)
	fmt.Printf("  → %s (allOK=%t)\n", res.Verification.Summary, res.Verification.AllOK)
}
