// Sweep example: the paper's flock-of-birds threshold scaling, x ≥ c for
// c = 2..9, as one declarative scenario sweep.
//
// Example 2.1's flock-of-birds protocol P decides x ≥ c with c+1 states —
// the state-hungry baseline against which the paper's busy beaver bounds
// are measured. The spec file next to this program sweeps c and, per c,
// the populations c−1, c and c+1 (the interesting band around the
// threshold), running two analysis kinds per grid point:
//
//   - verify: exact bottom-SCC verification against counting:{N} up to the
//     population size — the protocol really decides x ≥ c;
//   - simulate: 5 stochastic runs measuring convergence (parallel time).
//
// The same spec runs unchanged via the batch CLI and the HTTP API:
//
//	go run ./cmd/ppsweep -spec examples/sweep/spec.json -format csv
//	curl -sN localhost:8080/v1/sweep --data-binary @examples/sweep/spec.json
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	pp "repro"
)

func main() {
	data, err := os.ReadFile("examples/sweep/spec.json")
	if err != nil {
		// Running from inside the example directory.
		data, err = os.ReadFile("spec.json")
	}
	if err != nil {
		log.Fatal(err)
	}
	spec, err := pp.ParseSweepSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep %q: %d cells (protocol × population × kind grid)\n\n", spec.Name, len(cells))

	// Execute on a worker pool; cells stream back as they complete.
	res, err := pp.Sweep(context.Background(), pp.NewEngine(), spec, pp.SweepRunOptions{
		OnCell: func(cr pp.SweepCellResult) {
			fmt.Printf("  cell %2d %-9s size=%-2d %-8s ok=%t (%.1f ms)\n",
				cr.Index, cr.Protocol, cr.Size, cr.Kind, cr.OK, cr.ElapsedMillis)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reassemble the scaling table from the per-cell results: one row per
	// threshold c, exact verdict plus measured parallel time at c−1/c/c+1.
	type row struct {
		states   int
		verified bool
		parallel map[int64]float64 // population size → mean parallel time
	}
	rows := map[int64]*row{}
	for _, cr := range res.Cells {
		if !cr.OK || cr.Param == nil {
			continue
		}
		c := *cr.Param
		r := rows[c]
		if r == nil {
			r = &row{verified: true, parallel: map[int64]float64{}}
			rows[c] = r
		}
		r.states = cr.Result.Protocol.States
		switch {
		case cr.Result.Verification != nil:
			r.verified = r.verified && cr.Result.Verification.AllOK
		case cr.Result.Simulation != nil && cr.Result.Simulation.Estimate != nil:
			r.parallel[cr.Size] = cr.Result.Simulation.Estimate.MeanParallel
		}
	}
	fmt.Printf("\n%-4s %-7s %-9s %12s %12s %12s\n", "c", "states", "exact", "par(c-1)", "par(c)", "par(c+1)")
	for c := int64(2); c <= 9; c++ {
		r := rows[c]
		if r == nil {
			continue
		}
		verdict := "yes"
		if !r.verified {
			verdict = "NO"
		}
		fmt.Printf("%-4d %-7d %-9s %12s %12s %12s\n", c, r.states, verdict,
			par(r.parallel, c-1), par(r.parallel, c), par(r.parallel, c+1))
	}
	fmt.Printf("\n%d/%d cells in %.0f ms (workers=%d); simulate parallel-time p50=%.1f p95=%.1f\n",
		res.Completed, res.TotalCells, res.WallMillis, res.Workers,
		res.Simulation.ParallelP50, res.Simulation.ParallelP95)
}

// par renders one measured mean parallel time ("-" when the population was
// skipped, e.g. below 2 agents).
func par(m map[int64]float64, n int64) string {
	v, ok := m[n]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
