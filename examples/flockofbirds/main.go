// Flock of birds: the paper's running example of state complexity.
//
// "Is the flock at least η birds large?" Example 2.1 gives two protocols
// for x ≥ 2^k — the naive P_k with 2^k+1 states and the succinct P'_k with
// k+2 states — and the library adds a binary-expansion protocol handling
// arbitrary η with O(log η) states. This example builds all three for the
// same threshold, verifies their behaviour, and prints the state-complexity
// comparison that motivates the busy beaver function BB(n).
//
// Run with: go run ./examples/flockofbirds
package main

import (
	"fmt"
	"log"

	pp "repro"
)

func main() {
	const k = 4
	eta := int64(1) << k // η = 16

	entries := []struct {
		label string
		entry pp.Entry
	}{
		{"P_k   (flock-of-birds)", pp.FlockOfBirds(eta)},
		{"P'_k  (succinct)", pp.Succinct(k)},
		{"binary(η)", pp.BinaryThreshold(eta)},
	}

	fmt.Printf("three protocols for x ≥ %d\n\n", eta)
	fmt.Printf("%-24s %8s %14s %14s\n", "construction", "|Q|", "sim x=η−1", "sim x=η")
	for _, e := range entries {
		p := e.entry.Protocol
		below, err := pp.Simulate(p, p.InitialConfigN(eta-1), pp.SimOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		at, err := pp.Simulate(p, p.InitialConfigN(eta), pp.SimOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %8d %14s %14s\n", e.label, p.NumStates(),
			verdict(below, 0), verdict(at, 1))
	}

	fmt.Println()
	fmt.Println("state complexity of x ≥ η (Section 2.3):")
	fmt.Printf("  naive:    η+1        = %d states\n", eta+1)
	fmt.Printf("  succinct: k+2        = %d states (η a power of two)\n", k+2)
	fmt.Printf("  binary:   ≤2⌈log η⌉+3 = %d states (any η)\n",
		pp.BinaryThreshold(eta).Protocol.NumStates())
	fmt.Println()
	fmt.Println("the paper's theorems bracket how far this compression can go:")
	fmt.Printf("  BB(n) ≥ 2^(n−2)           (Theorem 2.2, witnessed by P'_k)\n")
	fmt.Printf("  BB(n) ≤ 2^((2n+2)!)       (Theorem 5.9) — e.g. n=6: 2^((14)!)\n")
	fmt.Printf("  with leaders, only an F_ω-level bound is known (Theorem 4.5)\n")
}

func verdict(st pp.SimStats, want int) string {
	if !st.Converged {
		return "no consensus"
	}
	if st.Output == want {
		return fmt.Sprintf("✓ output %d", st.Output)
	}
	return fmt.Sprintf("✗ output %d", st.Output)
}
