// Statebounds: run the paper's Theorem 5.9 proof as an algorithm.
//
// Given a leaderless protocol, the pipeline (Sections 5.3–5.5) finds a
// machine-checkable *pumping certificate*: a concrete input A and step B
// such that the protocol provably gives the same stable answer on every
// input A, A+B, A+2B, ... — hence, if the protocol computes x ≥ η at all,
// then η ≤ A. The certificate carries explicit transition sequences and a
// small potentially realisable multiset θ (Corollary 5.7); an independent
// checker replays everything with exact arithmetic.
//
// Run with: go run ./examples/statebounds
package main

import (
	"fmt"
	"log"
	"sort"

	pp "repro"
)

func main() {
	for _, tc := range []struct {
		label string
		entry pp.Entry
		eta   int64
	}{
		{"flock-of-birds, η=4", pp.FlockOfBirds(4), 4},
		{"succinct P'_2, η=4", pp.Succinct(2), 4},
		{"binary threshold, η=5", pp.BinaryThreshold(5), 5},
	} {
		p := tc.entry.Protocol
		fmt.Printf("=== %s (%d states) ===\n", tc.label, p.NumStates())

		cert, err := pp.FindLeaderlessCertificate(p, pp.PumpOptions{Seed: 5})
		if err != nil {
			log.Fatalf("%s: %v", tc.label, err)
		}
		fmt.Printf("certificate: η ≤ %d, pumping step %d\n", cert.A, cert.B)
		fmt.Printf("  saturated D: %d agents (%d-saturated, via Lemma 5.4's IC(3^j) construction)\n",
			cert.D.Size(), minCount(cert.D))
		fmt.Printf("  stable ideal: S = %v, |Da| = %d\n", stateNames(p, cert.S), cert.Da.Size())
		fmt.Printf("  θ (Corollary 5.7): %d transitions, witness Db = %s\n",
			cert.Theta.Size(), p.FormatConfig(cert.Db))

		if err := pp.CheckLeaderlessCertificate(p, cert, nil); err != nil {
			log.Fatalf("checker rejected: %v", err)
		}
		fmt.Println("  independent checker: certificate VALID")

		n, t := int64(p.NumStates()), int64(p.NumTransitions())
		fmt.Printf("  true η = %d  |  certified A = %d  |  a-priori Theorem 5.9 bound = %s\n\n",
			tc.eta, cert.A, pp.Theorem59Bound(n, t))
	}
	fmt.Println("reading: the certificate bound sits between the true threshold and the")
	fmt.Println("paper's worst-case 2^((2n+2)!) — the proof is constructive, and running it")
	fmt.Println("on real protocols shows how much slack the worst-case analysis carries.")
}

func minCount(c pp.Config) int64 {
	m := c[0]
	for _, v := range c {
		if v < m {
			m = v
		}
	}
	return m
}

func stateNames(p *pp.Protocol, s map[int]bool) []string {
	var out []string
	for q := range s {
		out = append(out, p.StateName(pp.State(q)))
	}
	sort.Strings(out)
	return out
}
