// Chemistry: population protocols as chemical reaction networks.
//
// The paper's introduction notes that population protocols are "very
// strongly related to chemical reaction networks ... agents are molecules
// that change their states due to collisions", and that the number of
// states equals the number of chemical species — the reason state
// complexity matters for molecular computing.
//
// This example renders a threshold protocol as a CRN (one bimolecular
// reaction per non-identity transition), then simulates a beaker of
// molecules and prints species concentrations over time until the mixture
// stabilises on its verdict: "are there at least 11 X molecules?"
//
// Run with: go run ./examples/chemistry
package main

import (
	"fmt"
	"log"
	"sort"

	pp "repro"
)

func main() {
	e := pp.BinaryThreshold(11)
	p := e.Protocol

	fmt.Println("chemical reaction network for the predicate x ≥ 11")
	fmt.Printf("species (%d): ", p.NumStates())
	for q := pp.State(0); int(q) < p.NumStates(); q++ {
		fmt.Printf("[%s] ", p.StateName(q))
	}
	fmt.Println()
	fmt.Println("reactions (collisions):")
	count := 0
	for _, t := range p.Transitions() {
		if t.IsIdentity() {
			continue
		}
		fmt.Printf("  %s + %s  →  %s + %s\n",
			p.StateName(t.P), p.StateName(t.Q), p.StateName(t.P2), p.StateName(t.Q2))
		count++
	}
	fmt.Printf("(%d reactions; identity collisions omitted)\n\n", count)

	// Fill the beaker with 64 X molecules (each an agent holding value
	// 2^0) and watch the mixture evolve.
	const molecules = 64
	st, err := pp.Simulate(p, p.InitialConfigN(molecules), pp.SimOptions{
		Seed:       1869, // Mendeleev
		TraceEvery: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulating %d molecules of 2^0:\n", molecules)
	fmt.Printf("%-12s %s\n", "collisions", "mixture")
	for i, tp := range st.Trace {
		// Print a handful of snapshots, not every one.
		if i%4 != 0 && i != len(st.Trace)-1 {
			continue
		}
		fmt.Printf("%-12d %s\n", tp.Interactions, mixture(p, tp.Config))
	}
	fmt.Printf("\nstable verdict: output %d (x = %d ≥ 11 is %t) after %.1f parallel time\n",
		st.Output, molecules, st.Output == 1, st.ParallelTime)
}

// mixture renders a configuration as species counts sorted by abundance.
func mixture(p *pp.Protocol, c pp.Config) string {
	type sp struct {
		name string
		n    int64
	}
	var out []sp
	for q, n := range c {
		if n > 0 {
			out = append(out, sp{p.StateName(pp.State(q)), n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].name < out[j].name
	})
	s := ""
	for _, x := range out {
		s += fmt.Sprintf("%d·[%s] ", x.n, x.name)
	}
	return s
}
