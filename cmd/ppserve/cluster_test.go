package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/serve"
)

func TestAdvertiseURL(t *testing.T) {
	for addr, want := range map[string]string{
		"0.0.0.0:8080":   "http://127.0.0.1:8080",
		"127.0.0.1:9000": "http://127.0.0.1:9000",
		"10.1.2.3:80":    "http://10.1.2.3:80",
	} {
		tcp, err := net.ResolveTCPAddr("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if got := advertiseURL(tcp); got != want {
			t.Errorf("advertiseURL(%s) = %s, want %s", addr, got, want)
		}
	}
}

// TestClusterEndToEndWithDrain boots a real coordinator daemon and a real
// worker daemon on loopback TCP (the same wiring the -coordinator and
// -worker flags build), runs a sweep through the coordinator, then cancels
// the worker's context — the SIGTERM path — and checks it deregistered
// before exiting.
func TestClusterEndToEndWithDrain(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})

	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	cdone := make(chan error, 1)
	go func() {
		cdone <- serveOn(cctx, cln, engine.New(), serve.Options{
			Cluster:         coord,
			ClusterDispatch: cluster.DispatchOptions{RangeCells: 2},
		}, nil)
	}()
	base := fmt.Sprintf("http://%s", cln.Addr())
	client := &http.Client{Timeout: 30 * time.Second}

	// Worker daemon, wired exactly as run() does for -worker -join.
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := &cluster.Agent{Coordinator: base, Self: advertiseURL(wln.Addr()), ID: "w1"}
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	go func() { _ = agent.Run(actx) }()
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan error, 1)
	drain := func(dctx context.Context) {
		acancel()
		if err := agent.Deregister(dctx); err != nil {
			t.Errorf("deregister: %v", err)
		}
	}
	go func() { wdone <- serveOn(wctx, wln, engine.New(), serve.Options{}, drain) }()

	memberCount := func() int {
		resp, err := client.Get(base + "/v1/cluster/members")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		var body struct {
			Workers []cluster.Worker `json:"workers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return -1
		}
		return len(body.Workers)
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitFor("worker registration", func() bool { return memberCount() == 1 })

	// A sweep through the coordinator fans out to the worker.
	spec := `{
	  "name": "e2e",
	  "protocols": [{"spec": "flock:{N}"}],
	  "params": [{"from": 3, "to": 4}],
	  "kinds": ["simulate", "stable"],
	  "sizes": [6],
	  "options": {"seed": 7, "exactOracle": true}
	}`
	resp, err := client.Post(base+"/v1/sweep", "application/json", bytes.NewBufferString(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var cells, summaries int
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var row serve.SweepRow
		if err := dec.Decode(&row); err != nil {
			t.Fatal(err)
		}
		switch row.Type {
		case "cell":
			if row.Cell.Index != cells {
				t.Errorf("cell %d arrived at position %d (stream must be grid-ordered)", row.Cell.Index, cells)
			}
			cells++
		case "summary":
			summaries++
			if row.Summary.Completed != 4 || row.Summary.Failed != 0 {
				t.Errorf("bad summary: %+v", row.Summary)
			}
		case "error":
			t.Fatalf("stream error: %s", row.Error)
		}
	}
	if cells != 4 || summaries != 1 {
		t.Fatalf("got %d cells and %d summaries, want 4 and 1", cells, summaries)
	}
	// The worker actually served ranges (the coordinator did not fall back
	// to local execution).
	resp2, err := client.Get(base + "/v1/cluster/members")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Workers []cluster.Worker `json:"workers"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(body.Workers) != 1 || body.Workers[0].CellsServed != 4 {
		t.Fatalf("worker stats after sweep: %+v", body.Workers)
	}

	// SIGTERM path: cancelling the worker's context runs the drain hook,
	// which must deregister it from the coordinator before exit.
	wcancel()
	select {
	case err := <-wdone:
		if err != nil {
			t.Fatalf("worker serveOn: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker did not shut down")
	}
	waitFor("worker deregistration", func() bool { return memberCount() == 0 })

	ccancel()
	select {
	case err := <-cdone:
		if err != nil {
			t.Fatalf("coordinator serveOn: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}
