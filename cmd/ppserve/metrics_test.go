package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/metrics/testutil"
	"repro/internal/serve"
)

// scrape GETs url and parses the Prometheus text exposition into sample
// values keyed by rendered line identity.
func scrape(t *testing.T, client *http.Client, url string) map[string]float64 {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scraping %s: status %d", url, resp.StatusCode)
	}
	vals, err := testutil.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition from %s: %v", url, err)
	}
	return vals
}

// TestMetricsEndToEndScrape is the tentpole's e2e check: a live ppserve
// runs real traffic (analyze + streamed sweep), then GET /metrics on the
// API address exposes the engine and serve families with the values that
// traffic must have produced.
func TestMetricsEndToEndScrape(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveOn(ctx, ln, engine.New(), serve.Options{Metrics: reg}, nil) }()
	base := fmt.Sprintf("http://%s", ln.Addr())
	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Post(base+"/v1/analyze", "application/json",
		bytes.NewBufferString(`{"kind":"simulate","protocol":{"spec":"flock:4"},"input":[8],"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	resp, err = client.Post(base+"/v1/sweep", "application/json",
		bytes.NewBufferString(`{"name":"scrape","kinds":["bounds"],"params":[{"from":3,"to":7}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}

	vals := scrape(t, client, base+"/metrics")
	for line, want := range map[string]float64{
		`pp_engine_requests_total{kind="simulate",status="ok"}`:        1,
		`pp_engine_requests_total{kind="bounds",status="ok"}`:          5,
		`pp_serve_requests_total{endpoint="/v1/analyze",status="200"}`: 1,
		`pp_serve_requests_total{endpoint="/v1/sweep",status="200"}`:   1,
		`pp_serve_stream_rows_total{type="cell"}`:                      5,
		`pp_serve_stream_rows_total{type="summary"}`:                   1,
		`pp_serve_sweeps_inflight`:                                     0,
	} {
		if got := vals[line]; got != want {
			t.Errorf("scraped %s = %v, want %v", line, got, want)
		}
	}
	if vals["pp_engine_slots_capacity"] < 1 {
		t.Errorf("scraped pp_engine_slots_capacity = %v, want >= 1", vals["pp_engine_slots_capacity"])
	}
	if vals[`pp_engine_request_duration_seconds_count{kind="bounds"}`] != 5 {
		t.Errorf("latency histogram count = %v, want 5",
			vals[`pp_engine_request_duration_seconds_count{kind="bounds"}`])
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveOn: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestMetricsOwnListener: the -metrics flag's dedicated listener serves
// the same registry the API handler registers into.
func TestMetricsOwnListener(t *testing.T) {
	reg := metrics.NewRegistry()
	c := metrics.NewCounter(metrics.Opts{Namespace: "t", Name: "own_total", Help: "own"})
	c.Add(3)
	reg.MustRegister(c)
	mln, err := startMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer mln.Close()
	client := &http.Client{Timeout: 10 * time.Second}
	vals := scrape(t, client, fmt.Sprintf("http://%s/metrics", mln.Addr()))
	if vals["t_own_total"] != 3 {
		t.Errorf("own-listener scrape t_own_total = %v, want 3", vals["t_own_total"])
	}
}

// holdSweep is a one-cell sweep whose simulate cell spins without
// converging under a huge step budget: the NDJSON stream stays open until
// the client disconnects or the server drains — a deterministic in-flight
// request for the drain drill.
const holdSweep = `{
  "name": "hold",
  "protocols": [{"inline": {
    "name": "spinner",
    "states": [{"name": "a", "output": 0}, {"name": "b", "output": 1}],
    "transitions": [["a","a","b","b"], ["b","b","a","a"]],
    "inputs": {"x": "a"},
    "completeWithIdentity": true
  }, "inputs": [[200]]}],
  "kinds": ["simulate"],
  "options": {"maxSteps": 2000000000}
}`

// TestDrainOrderUnderMetrics is the SIGTERM drill with the gauges watching:
// with a sweep still streaming on the worker, the drain hook must bump the
// coordinator's deregistration counter BEFORE the worker's listener closes,
// and the worker's in-flight gauge must be 1 during the stream and 0 after
// the drained exit.
func TestDrainOrderUnderMetrics(t *testing.T) {
	client := &http.Client{Timeout: 30 * time.Second}

	// Coordinator with its own registry, scraped over its API address.
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	creg := metrics.NewRegistry()
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	cdone := make(chan error, 1)
	go func() {
		cdone <- serveOn(cctx, cln, engine.New(), serve.Options{Cluster: coord, Metrics: creg}, nil)
	}()
	base := fmt.Sprintf("http://%s", cln.Addr())

	// Worker with a dedicated metrics listener (the -metrics flag wiring):
	// it outlives the API listener's graceful close, so the test can still
	// read the gauges after the drain.
	wreg := metrics.NewRegistry()
	mln, err := startMetrics("127.0.0.1:0", wreg)
	if err != nil {
		t.Fatal(err)
	}
	defer mln.Close()
	wmetrics := fmt.Sprintf("http://%s/metrics", mln.Addr())

	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := &cluster.Agent{Coordinator: base, Self: advertiseURL(wln.Addr()), ID: "w1"}
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	go func() { _ = agent.Run(actx) }()
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan error, 1)
	drain := func(dctx context.Context) {
		acancel()
		if err := agent.Deregister(dctx); err != nil {
			t.Errorf("deregister: %v", err)
		}
	}
	go func() { wdone <- serveOn(wctx, wln, engine.New(), serve.Options{Metrics: wreg}, drain) }()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitFor("worker registration visible in coordinator metrics", func() bool {
		return scrape(t, client, base+"/metrics")[`pp_cluster_members{state="active"}`] == 1
	})

	// Hold a sweep open on the worker and see it in the in-flight gauge.
	resp, err := client.Post(fmt.Sprintf("http://%s/v1/sweep", wln.Addr()),
		"application/json", bytes.NewBufferString(holdSweep))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hold sweep status %d", resp.StatusCode)
	}
	waitFor("in-flight gauge to read the held sweep", func() bool {
		return scrape(t, client, wmetrics)["pp_serve_sweeps_inflight"] == 1
	})

	// SIGTERM: the drain hook deregisters while the sweep still streams.
	wcancel()
	waitFor("deregistration counter on the coordinator", func() bool {
		return scrape(t, client, base+"/metrics")["pp_cluster_deregistrations_total"] == 1
	})
	select {
	case err := <-wdone:
		t.Fatalf("worker closed its listener before the in-flight stream ended (err=%v)", err)
	default:
		// Deregistration is visible and the worker is still serving the
		// held stream: dereg-before-close is proven.
	}
	if got := scrape(t, client, wmetrics)["pp_serve_sweeps_inflight"]; got != 1 {
		t.Errorf("in-flight gauge during drain = %v, want 1", got)
	}

	// Release the stream; the worker finishes the graceful shutdown.
	resp.Body.Close()
	select {
	case err := <-wdone:
		if err != nil {
			t.Fatalf("worker serveOn: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker did not shut down after the stream closed")
	}
	waitFor("in-flight gauge to drop to zero", func() bool {
		return scrape(t, client, wmetrics)["pp_serve_sweeps_inflight"] == 0
	})
	vals := scrape(t, client, wmetrics)
	if vals[`pp_serve_requests_total{endpoint="/v1/sweep",status="200"}`] != 1 {
		t.Errorf("drained sweep not counted: %v",
			vals[`pp_serve_requests_total{endpoint="/v1/sweep",status="200"}`])
	}
	if vals[`pp_cluster_members{state="active"}`] != 0 {
		// wreg has no cluster collectors (worker mode), so this reads 0 —
		// just ensure the scrape itself stayed well-formed.
		t.Logf("worker exposes no cluster families, as expected")
	}

	ccancel()
	select {
	case err := <-cdone:
		if err != nil {
			t.Fatalf("coordinator serveOn: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}
