// Command ppserve is the analysis-engine HTTP daemon: every analysis the
// pp library offers (simulation, exact verification, stable sets, pumping
// certificates, saturation, realisable bases, bounds, cover lengths) and
// batch scenario sweeps behind one JSON API.
//
// Usage:
//
//	ppserve                          # listen on :8080
//	ppserve -addr 127.0.0.1:9000 -timeout 10s -max-timeout 1m -sweep-timeout 30m
//	ppserve -pprof localhost:6060    # opt-in net/http/pprof for profiling
//
// Endpoints:
//
//	POST /v1/analyze   {"kind":"simulate","protocol":{"spec":"flock:8"},"input":[20]}
//	POST /v1/sweep     sweep spec in, NDJSON stream out (one row per cell)
//	GET  /v1/catalog   resolvable specs + built-in protocol zoo
//	GET  /healthz      liveness probe
//
// Requests are handled concurrently against a shared engine whose
// content-hash cache memoizes per-protocol artifacts, so repeated analyses
// of the same protocol are near-free. Each analyze request runs under a
// deadline (its own timeoutMillis, clamped to -max-timeout; else
// -timeout); sweeps run under -sweep-timeout, stream one NDJSON row per
// completed cell, and stop when the client disconnects. See docs/api.md
// for the full HTTP reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/serve"
)

func main() { cli.Main("ppserve", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		timeout       = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout    = fs.Duration("max-timeout", 2*time.Minute, "ceiling for request-supplied deadlines")
		sweepTimeout  = fs.Duration("sweep-timeout", 10*time.Minute, "deadline for a whole /v1/sweep request")
		sweepWorkers  = fs.Int("sweep-workers", 0, "worker-pool size per sweep (0 = GOMAXPROCS)")
		stableWorkers = fs.Int("stable-workers", 0, "goroutines per stable-set analysis fixpoint (0 = sequential; results are bit-identical)")
		pprofAddr     = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		pln, err := startPprof(*pprofAddr)
		if err != nil {
			ln.Close()
			return err
		}
		defer pln.Close()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveOn(ctx, ln, serve.Options{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SweepTimeout:   *sweepTimeout,
		SweepWorkers:   *sweepWorkers,
		StableWorkers:  *stableWorkers,
	})
}

// startPprof serves net/http/pprof on its own (normally loopback-only)
// listener until that listener is closed, so hot-path regressions can be
// profiled in place without exposing pprof on the API address.
func startPprof(addr string) (net.Listener, error) {
	pln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ppserve: pprof on http://%s/debug/pprof/\n", pln.Addr())
	go func() {
		// DefaultServeMux carries the net/http/pprof handlers; the main API
		// server uses an explicit handler and is unaffected.
		if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "ppserve: pprof server: %v\n", err)
		}
	}()
	return pln, nil
}

// serveOn runs the daemon on an existing listener until ctx is cancelled,
// then shuts down gracefully. Split from run so tests can drive a real
// server on an ephemeral port.
func serveOn(ctx context.Context, ln net.Listener, opts serve.Options) error {
	srv := &http.Server{
		Handler:           serve.NewHandler(engine.New(), opts),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ppserve: listening on %s\n", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
