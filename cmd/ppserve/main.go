// Command ppserve is the analysis-engine HTTP daemon: every analysis the
// pp library offers (simulation, exact verification, stable sets, pumping
// certificates, saturation, realisable bases, bounds, cover lengths) and
// batch scenario sweeps behind one JSON API.
//
// Usage:
//
//	ppserve                          # listen on :8080
//	ppserve -addr 127.0.0.1:9000 -timeout 10s -max-timeout 1m -sweep-timeout 30m
//	ppserve -pprof localhost:6060    # opt-in net/http/pprof for profiling
//	ppserve -metrics localhost:9090  # /metrics on its own scrape address too
//	ppserve -coordinator             # cluster coordinator: fans sweeps out
//	ppserve -worker -join http://coordinator:8080   # cluster worker
//	ppserve -journal-dir DIR -artifact-dir DIR      # durable: resumable sweeps,
//	                                                # disk-backed artifact cache
//	ppserve -rate-limit 10 -rate-burst 20           # per-client 429 + Retry-After
//	ppserve -artifact-dir DIR -artifact-max-bytes 1073741824   # LRU artifact GC
//	ppserve -journal-dir DIR -journal-retain 168h -journal-max-bytes 268435456
//
// Endpoints:
//
//	POST /v1/analyze   {"kind":"simulate","protocol":{"spec":"flock:8"},"input":[20]}
//	POST /v1/sweep     sweep spec in, NDJSON stream out (one row per cell)
//	GET  /v1/catalog   resolvable specs + built-in protocol zoo
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus text exposition (engine, serve, cluster collectors)
//	GET  /v1/artifacts/{kind}/{hash}   CRC-framed memoized artifact (peer fetch)
//	POST /v1/cluster/register, /v1/cluster/heartbeat, /v1/cluster/deregister
//	GET  /v1/cluster/members        (coordinator mode only)
//
// Requests are handled concurrently against a shared engine whose
// content-hash cache memoizes per-protocol artifacts, so repeated analyses
// of the same protocol are near-free. Each analyze request runs under a
// deadline (its own timeoutMillis, clamped to -max-timeout; else
// -timeout); sweeps run under -sweep-timeout, stream one NDJSON row per
// completed cell, and stop when the client disconnects. When every
// execution slot is busy and -max-queue requests already wait, further
// requests are shed with 503 + Retry-After instead of queueing without
// bound.
//
// In cluster mode a -coordinator process fans each /v1/sweep out across
// the workers that joined it (-worker -join URL), routing cell ranges by
// protocol content hash and retrying failed ranges on survivors; the
// merged stream is the one a single process would have produced. On
// SIGTERM a worker drains gracefully: it deregisters from the coordinator,
// finishes its in-flight requests, and exits.
//
// With -journal-dir every sweep is write-ahead logged: a killed server,
// restarted over the same directory, resumes the sweep on resubmission
// (replayed cells verbatim, only the remainder recomputed) and the
// canonical stream is byte-identical to a never-crashed run. With
// -artifact-dir the engine's memoized artifacts persist to disk and
// cluster nodes peer-fetch them over /v1/artifacts. See docs/api.md for
// the full HTTP reference and docs/operations.md for durability and
// fault injection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() { cli.Main("ppserve", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		timeout       = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout    = fs.Duration("max-timeout", 2*time.Minute, "ceiling for request-supplied deadlines")
		sweepTimeout  = fs.Duration("sweep-timeout", 10*time.Minute, "deadline for a whole /v1/sweep request")
		sweepWorkers  = fs.Int("sweep-workers", 0, "worker-pool size per sweep (0 = GOMAXPROCS)")
		stableWorkers = fs.Int("stable-workers", 0, "goroutines per stable-set analysis fixpoint (0 = sequential; results are bit-identical)")
		pprofAddr     = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
		metricsAddr   = fs.String("metrics", "", "additionally serve GET /metrics on its own address (e.g. localhost:9090); the API address always serves /metrics")
		slots         = fs.Int("slots", 0, "engine execution slots (0 = GOMAXPROCS)")
		maxQueue      = fs.Int("max-queue", 0, "waiting requests before 503 shedding kicks in (0 = 2x slots, -1 = never shed)")
		logRequests   = fs.Bool("log-requests", false, "emit one structured log line per request on stderr")
		coordinator   = fs.Bool("coordinator", false, "run as cluster coordinator: accept worker registrations, fan sweeps out")
		workerMode    = fs.Bool("worker", false, "run as cluster worker: join the coordinator at -join")
		join          = fs.String("join", "", "coordinator base URL to register with (worker mode)")
		advertise     = fs.String("advertise", "", "base URL this worker advertises to the coordinator (default: derived from -addr)")
		workerID      = fs.String("worker-id", "", "stable worker identity (default: hostname-pid)")
		heartbeatTTL  = fs.Duration("heartbeat-ttl", cluster.DefaultTTL, "worker lease duration; workers heartbeat at a third of it (coordinator mode)")
		rangeCells    = fs.Int("range-cells", 0, "cells per dispatched range, the retry granularity (coordinator mode; 0 = 64)")
		rangeTimeout  = fs.Duration("range-timeout", 0, "flat per-range dispatch deadline (coordinator mode; 0 = 2m)")
		journalDir    = fs.String("journal-dir", "", "durable sweep journal directory: /v1/sweep logs dispatched ranges and completed cells, and a resubmitted spec resumes instead of recomputing")
		artifactDir   = fs.String("artifact-dir", "", "disk-backed artifact store directory behind the engine's in-memory cache; restarts serve repeated protocols from disk")
		rateLimit     = fs.Float64("rate-limit", 0, "per-client request rate (requests/second) on the public endpoints; over-budget requests get 429 + Retry-After (0 = unlimited)")
		rateBurst     = fs.Int("rate-burst", 0, "per-client burst allowance of -rate-limit (0 = 2x the rate, at least 1)")
		artifactMax   = fs.Int64("artifact-max-bytes", 0, "artifact store size budget: a background GC evicts least-recently-used artifacts past it (0 = unbounded)")
		journalRetain = fs.Duration("journal-retain", 0, "age out completed sweep WALs older than this; in-progress sweeps are never touched (0 = keep forever)")
		journalMax    = fs.Int64("journal-max-bytes", 0, "journal directory size budget: oldest completed WALs removed past it (0 = unbounded)")
		breakerFails  = fs.Int("breaker-failures", 0, "consecutive dispatch failures tripping a worker's circuit breaker (coordinator mode; 0 = 3)")
		breakerWait   = fs.Duration("breaker-backoff", 0, "tripped breaker backoff before a half-open probe; doubles per failed probe (coordinator mode; 0 = 15s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator && *workerMode {
		return errors.New("-coordinator and -worker are mutually exclusive")
	}
	if *workerMode && *join == "" {
		return errors.New("-worker requires -join")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		pln, err := startPprof(*pprofAddr)
		if err != nil {
			ln.Close()
			return err
		}
		defer pln.Close()
	}

	eng := engine.New()
	if *slots > 0 {
		eng.SetSlots(*slots)
	}
	if *artifactDir != "" {
		st, err := store.Open(*artifactDir)
		if err != nil {
			ln.Close()
			return err
		}
		if *artifactMax > 0 {
			if err := st.EnableGC(store.GCOptions{MaxBytes: *artifactMax}); err != nil {
				ln.Close()
				return err
			}
			defer st.CloseGC()
		}
		eng.SetArtifactStore(st)
		// Workers fill disk misses from the coordinator's /v1/artifacts,
		// which forwards to the rendezvous owner when it misses locally.
		if *workerMode {
			eng.SetPeerFetch(cluster.PeerFetch(nil, strings.TrimSuffix(*join, "/")))
		}
	}
	reg := metrics.NewRegistry()
	if *metricsAddr != "" {
		mln, err := startMetrics(*metricsAddr, reg)
		if err != nil {
			ln.Close()
			return err
		}
		defer mln.Close()
	}
	opts := serve.Options{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SweepTimeout:   *sweepTimeout,
		SweepWorkers:   *sweepWorkers,
		StableWorkers:  *stableWorkers,
		MaxQueue:       *maxQueue,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
		Metrics:        reg,
	}
	if *journalDir != "" {
		js, err := journal.Open(*journalDir)
		if err != nil {
			ln.Close()
			return err
		}
		opts.Journal = js
		if *journalRetain > 0 || *journalMax > 0 {
			go compactLoop(js, journal.Retention{Retain: *journalRetain, MaxBytes: *journalMax})
		}
	}
	var logger *slog.Logger
	if *logRequests {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		opts.RequestLog = logger
	}
	if *coordinator {
		opts.Cluster = cluster.NewCoordinator(cluster.CoordinatorOptions{
			TTL:             *heartbeatTTL,
			BreakerFailures: *breakerFails,
			BreakerBackoff:  *breakerWait,
		})
		opts.ClusterDispatch = cluster.DispatchOptions{
			RangeCells:   *rangeCells,
			RangeTimeout: *rangeTimeout,
		}
	}

	var drain func(context.Context)
	if *workerMode {
		self := *advertise
		if self == "" {
			self = advertiseURL(ln.Addr())
		}
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		agent := &cluster.Agent{
			Coordinator: strings.TrimSuffix(*join, "/"),
			Self:        strings.TrimSuffix(self, "/"),
			ID:          id,
			Log:         logger,
		}
		actx, acancel := context.WithCancel(context.Background())
		defer acancel()
		go func() { _ = agent.Run(actx) }()
		// The SIGTERM drain: tell the coordinator to stop routing to us and
		// forget us, before the HTTP server finishes in-flight requests.
		drain = func(dctx context.Context) {
			acancel()
			if err := agent.Deregister(dctx); err != nil {
				fmt.Fprintf(os.Stderr, "ppserve: deregister: %v\n", err)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveOn(ctx, ln, eng, opts, drain)
}

// compactLoop runs journal retention in the background: one pass at
// startup (a restart with a tightened policy applies it immediately), then
// once a minute. Compaction skips in-progress sweeps and never blocks
// request handling, so a failed pass is only worth a log line.
func compactLoop(js *journal.Store, ret journal.Retention) {
	for {
		if _, err := js.Compact(ret); err != nil {
			fmt.Fprintf(os.Stderr, "ppserve: journal compaction: %v\n", err)
		}
		time.Sleep(time.Minute)
	}
}

// advertiseURL derives a worker's advertised base URL from its listen
// address, substituting loopback for an unspecified host (":8080" is
// dialable as itself only from the same machine anyway).
func advertiseURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// startPprof serves net/http/pprof on its own (normally loopback-only)
// listener until that listener is closed, so hot-path regressions can be
// profiled in place without exposing pprof on the API address.
func startPprof(addr string) (net.Listener, error) {
	pln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ppserve: pprof on http://%s/debug/pprof/\n", pln.Addr())
	go func() {
		// DefaultServeMux carries the net/http/pprof handlers; the main API
		// server uses an explicit handler and is unaffected.
		if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "ppserve: pprof server: %v\n", err)
		}
	}()
	return pln, nil
}

// startMetrics serves the Prometheus exposition on its own listener —
// -pprof's pattern, for deployments that keep the scrape target off the
// API address. NewHandler registers the collectors into reg; the dedicated
// listener serves the same registry.
func startMetrics(addr string, reg *metrics.Registry) (net.Listener, error) {
	mln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ppserve: metrics on http://%s/metrics\n", mln.Addr())
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	go func() {
		if err := http.Serve(mln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "ppserve: metrics server: %v\n", err)
		}
	}()
	return mln, nil
}

// serveOn runs the daemon on an existing listener until ctx is cancelled,
// then shuts down gracefully: drain (announce departure to the coordinator,
// if any) runs first, then Shutdown stops accepting and waits for in-flight
// requests. Split from run so tests can drive a real server on an ephemeral
// port.
func serveOn(ctx context.Context, ln net.Listener, eng *engine.Engine, opts serve.Options, drain func(context.Context)) error {
	srv := &http.Server{
		Handler:           serve.NewHandler(eng, opts),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ppserve: listening on %s\n", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if drain != nil {
			drain(shutdownCtx)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
