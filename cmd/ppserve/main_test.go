package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/serve"
)

// TestServeEndToEnd boots the real daemon on an ephemeral port and drives
// it over TCP: a simulate request and a verify request must both answer,
// plus catalog and health.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveOn(ctx, ln, engine.New(), serve.Options{}, nil) }()
	base := fmt.Sprintf("http://%s", ln.Addr())
	client := &http.Client{Timeout: 30 * time.Second}

	post := func(body string) (*http.Response, *engine.Result) {
		t.Helper()
		resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res engine.Result
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
		}
		return resp, &res
	}

	// Simulate end-to-end.
	resp, res := post(`{"kind":"simulate","protocol":{"spec":"flock:4"},"input":[8],"seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d", resp.StatusCode)
	}
	if res.Simulation == nil || !res.Simulation.Converged || res.Simulation.Output != 1 {
		t.Fatalf("simulate: bad result %+v", res.Simulation)
	}

	// Verify end-to-end.
	resp, res = post(`{"kind":"verify","protocol":{"spec":"majority"},"maxSize":6}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d", resp.StatusCode)
	}
	if res.Verification == nil || !res.Verification.AllOK {
		t.Fatalf("verify: bad result %+v", res.Verification)
	}

	// Catalog and health.
	for _, path := range []string{"/v1/catalog", "/healthz"} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// Graceful shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveOn: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestPprofEndpoint: the opt-in profiling listener serves the pprof index
// on its own port.
func TestPprofEndpoint(t *testing.T) {
	pln, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pln.Close()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", pln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address"}); err == nil {
		t.Error("bad address should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
