// Command ppexperiments regenerates the paper's experiment tables
// (E1–E11; each is the executable counterpart of one construction or
// theorem-shaped claim — see the experiments package).
//
// Usage:
//
//	ppexperiments                    # all tables, text
//	ppexperiments -markdown          # all tables, markdown
//	ppexperiments -only E6           # one table
//	ppexperiments -quick             # reduced ranges (CI-friendly)
//	ppexperiments -full-search       # E8 enumerates the full 3-state space
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() { cli.Main("ppexperiments", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppexperiments", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "reduced ranges and sample counts")
		full     = fs.Bool("full-search", false, "E8: enumerate the complete 3-state space (~373k protocols)")
		markdown = fs.Bool("markdown", false, "emit markdown instead of aligned text")
		only     = fs.String("only", "", "run a single experiment, e.g. E6")
		seed     = fs.Uint64("seed", 1, "seed for randomized components")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, FullSearch: *full, Seed: *seed}

	runners := map[string]func(experiments.Config) (*experiments.Table, error){
		"E1": experiments.E1Example21, "E2": experiments.E2BinaryThreshold,
		"E3": experiments.E3StableBases, "E4": experiments.E4Saturation,
		"E5": experiments.E5Pottier, "E6": experiments.E6PumpingCertificates,
		"E7": experiments.E7BoundsTable, "E8": experiments.E8BusyBeaverSearch,
		"E9": experiments.E9ControlledSequences, "E10": experiments.E10ParallelTime,
		"E11": experiments.E11CoverLengths,
	}
	if *only != "" {
		run, ok := runners[*only]
		if !ok {
			return fmt.Errorf("unknown experiment %q (E1..E11)", *only)
		}
		start := time.Now()
		tb, err := run(cfg)
		if err != nil {
			return err
		}
		emit(tb, *markdown)
		fmt.Fprintf(os.Stderr, "[%s in %s]\n", *only, time.Since(start).Round(time.Millisecond))
		return nil
	}
	start := time.Now()
	tables, err := experiments.All(cfg)
	if err != nil {
		return err
	}
	for _, tb := range tables {
		emit(tb, *markdown)
	}
	fmt.Fprintf(os.Stderr, "[all experiments in %s]\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func emit(tb *experiments.Table, markdown bool) {
	if markdown {
		fmt.Print(tb.Markdown())
	} else {
		fmt.Println(tb.String())
	}
}
