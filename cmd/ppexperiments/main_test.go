package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "E7", "-quick"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-only", "E4", "-quick", "-markdown"}); err != nil {
		t.Fatalf("run markdown: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full table run in -short mode")
	}
	if err := run([]string{"-quick"}); err != nil {
		t.Fatalf("run all: %v", err)
	}
}
