package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/serve"
)

// TestCanonicalLocalEqualsCluster is the CLI determinism check the CI smoke
// job scripts: the same spec run in-process and through a coordinator with a
// registered worker produces byte-identical -canonical output.
func TestCanonicalLocalEqualsCluster(t *testing.T) {
	spec := writeSpec(t, `{
	  "name": "cli-cluster",
	  "protocols": [{"spec": "flock:{N}"}],
	  "params": [{"from": 3, "to": 5}],
	  "kinds": ["simulate", "stable"],
	  "sizes": [6, 7],
	  "options": {"seed": 11, "exactOracle": true}
	}`)

	local := captureStdout(t, func() error {
		return run([]string{"-spec", spec, "-canonical", "-quiet"})
	})

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	srv := httptest.NewServer(serve.NewHandler(engine.New(), serve.Options{
		Cluster:         coord,
		ClusterDispatch: cluster.DispatchOptions{RangeCells: 3},
	}))
	defer srv.Close()
	worker := httptest.NewServer(serve.NewHandler(engine.New(), serve.Options{}))
	defer worker.Close()
	coord.Register("w1", worker.URL)

	remote := captureStdout(t, func() error {
		return run([]string{"-spec", spec, "-cluster", srv.URL, "-canonical", "-quiet"})
	})

	if local != remote {
		t.Errorf("canonical output differs between local and cluster runs:\nlocal:\n%s\ncluster:\n%s", local, remote)
	}
	// 3 params × (2 simulate sizes + 1 size-independent stable) = 9 cells.
	if n := strings.Count(local, "\n"); n != 10 {
		t.Errorf("canonical stream has %d lines, want 9 cells + 1 summary", n)
	}
	if !strings.Contains(local, `"type":"summary"`) {
		t.Error("canonical stream missing summary row")
	}

	// The worker actually executed the grid remotely.
	if ws := coord.Members(); len(ws) != 1 || ws[0].CellsServed != 9 {
		t.Errorf("worker stats: %+v", ws)
	}
}

func TestCanonicalRejectsCSV(t *testing.T) {
	spec := writeSpec(t, `{"kinds":["bounds"],"params":[3]}`)
	if err := run([]string{"-spec", spec, "-canonical", "-format", "csv"}); err == nil {
		t.Fatal("-canonical with -format csv must fail")
	}
}
