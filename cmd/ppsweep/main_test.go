package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpec drops a spec file into a temp dir.
func writeSpec(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs f with stdout redirected to a pipe and returns what it
// wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	data := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	if runErr != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", runErr, data)
	}
	return string(data)
}

// TestHundredCellSweepCSV is the acceptance check: a ≥100-cell sweep runs
// via the CLI and emits one CSV row per cell.
func TestHundredCellSweepCSV(t *testing.T) {
	spec := writeSpec(t, `{
	  "name": "bounds-scaling",
	  "kinds": ["bounds"],
	  "params": [{"from": 3, "to": 102}],
	  "maxCells": 200
	}`)
	out := captureStdout(t, func() error {
		return run([]string{"-spec", spec, "-format", "csv", "-quiet"})
	})
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out)
	}
	if len(rows) != 101 {
		t.Fatalf("got %d CSV rows, want header + 100 cells", len(rows))
	}
	if rows[0][0] != "index" || rows[0][4] != "kind" {
		t.Errorf("bad header: %v", rows[0])
	}
	for _, row := range rows[1:] {
		if row[4] != "bounds" || row[5] != "true" {
			t.Errorf("bad cell row: %v", row)
		}
	}
}

func TestSweepNDJSON(t *testing.T) {
	spec := writeSpec(t, `{
	  "protocols": [{"spec": "flock:{N}"}],
	  "params": [{"from": 3, "to": 4}],
	  "kinds": ["simulate", "stable"],
	  "sizes": ["{N}+1"],
	  "options": {"seed": 5}
	}`)
	out := captureStdout(t, func() error {
		return run([]string{"-spec", spec, "-quiet"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d NDJSON lines, want 4:\n%s", len(lines), out)
	}
	for _, line := range lines {
		var cell struct {
			Kind string `json:"kind"`
			OK   bool   `json:"ok"`
		}
		if err := json.Unmarshal([]byte(line), &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if !cell.OK {
			t.Errorf("cell failed: %s", line)
		}
	}
}

func TestBadSpecFails(t *testing.T) {
	spec := writeSpec(t, `{"kinds": ["zzz"]}`)
	if err := run([]string{"-spec", spec}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing spec file must fail")
	}
	if err := run([]string{}); err == nil {
		t.Fatal("missing -spec must fail")
	}
}
