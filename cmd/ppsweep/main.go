// Command ppsweep executes a declarative scenario sweep — a cartesian grid
// of protocols × predicate parameters × population sizes × analysis kinds —
// and emits one output row per completed cell, incrementally, as CSV or
// NDJSON ready for plotting.
//
// Usage:
//
//	ppsweep -spec sweep.json                  # NDJSON rows to stdout
//	ppsweep -spec sweep.json -format csv      # CSV rows to stdout
//	ppsweep -spec - -workers 8 < sweep.json   # spec from stdin, 8 workers
//	ppsweep -spec sweep.json -cluster http://coordinator:8080
//
// The spec format is documented in docs/api.md (the same document POST
// /v1/sweep accepts); examples/sweep holds a runnable flock-of-birds
// threshold sweep. Rows stream in completion order and carry the cell's
// grid index, so interrupted output is still attributable; the aggregate
// summary goes to stderr, keeping stdout machine-readable.
//
// With -cluster the sweep executes remotely: the spec is POSTed to the
// coordinator's /v1/sweep and the streamed rows are re-emitted locally, so
// output is identical in shape whether the grid ran in-process or fanned
// out across a worker fleet. -canonical emits the deterministic comparison
// form instead — index-sorted cells with volatile fields (timings, cache
// flags) zeroed, then a canonical summary row — which is byte-identical
// between a local run and a cluster run of the same spec.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/sweep"
)

func main() { cli.Main("ppsweep", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppsweep", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "sweep spec file (JSON; \"-\" for stdin)")
		format   = fs.String("format", "ndjson", "output format: ndjson or csv")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		timeout  = fs.Duration("timeout", 0, "overall sweep deadline (0 = none)")
		quiet    = fs.Bool("quiet", false, "suppress the stderr summary")
		cluster  = fs.String("cluster", "", "coordinator base URL: run the sweep remotely via POST /v1/sweep")
		canon    = fs.Bool("canonical", false, "emit canonical rows: index-sorted cells with volatile fields zeroed, then a canonical summary row (ndjson only; byte-comparable across local and cluster runs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("missing -spec (a JSON sweep spec file, or - for stdin)")
	}
	var (
		data []byte
		err  error
	)
	if *specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*specPath)
	}
	if err != nil {
		return err
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var emit func(sweep.CellResult) error
	var canonCells []sweep.CellResult
	switch {
	case *canon:
		if *format != "ndjson" {
			return fmt.Errorf("-canonical requires -format ndjson")
		}
		emit = func(cr sweep.CellResult) error {
			canonCells = append(canonCells, sweep.CanonicalCell(cr))
			return nil
		}
	case *format == "ndjson":
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		emit = func(cr sweep.CellResult) error { return enc.Encode(cr) }
	case *format == "csv":
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		if err := w.Write(csvHeader); err != nil {
			return err
		}
		emit = func(cr sweep.CellResult) error {
			if err := w.Write(csvRow(cr)); err != nil {
				return err
			}
			w.Flush() // incremental: each row is visible as it completes
			return w.Error()
		}
	default:
		return fmt.Errorf("unknown -format %q (ndjson|csv)", *format)
	}

	var emitErr error
	onCell := func(cr sweep.CellResult) {
		if emitErr == nil {
			emitErr = emit(cr)
		}
	}
	var res *sweep.Result
	if *cluster != "" {
		res, err = runCluster(ctx, strings.TrimSuffix(*cluster, "/"), data, onCell)
	} else {
		res, err = sweep.Run(ctx, engine.New(), spec, sweep.RunOptions{
			Workers: *workers,
			OnCell:  onCell,
			// Canonical mode buffers cells itself; don't retain them twice.
			DiscardCells: *canon,
		})
	}
	if emitErr != nil {
		return emitErr
	}
	if *canon && res != nil {
		if cerr := emitCanonical(os.Stdout, canonCells, res); cerr != nil {
			return cerr
		}
	}
	if res != nil && !*quiet {
		fmt.Fprintf(os.Stderr, "ppsweep: %s\n", summary(res))
	}
	return err
}

// runCluster executes the sweep on a coordinator: POST the spec, re-emit
// the streamed cell rows, return the summary row's aggregate.
func runCluster(ctx context.Context, base string, spec []byte, onCell func(sweep.CellResult)) (*sweep.Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweep", bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("cluster sweep: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var res *sweep.Result
	dec := json.NewDecoder(resp.Body)
	for {
		var row sweep.StreamRow
		if err := dec.Decode(&row); err != nil {
			if err == io.EOF {
				break
			}
			return res, fmt.Errorf("cluster sweep: reading stream: %w", err)
		}
		switch row.Type {
		case "cell":
			if row.Cell != nil {
				onCell(*row.Cell)
			}
		case "summary":
			res = row.Summary
		case "error":
			return res, fmt.Errorf("cluster sweep: %s", row.Error)
		}
	}
	if res == nil {
		return nil, errors.New("cluster sweep: stream ended without a summary row")
	}
	return res, nil
}

// emitCanonical writes the deterministic comparison form: cells sorted by
// grid index (completion order is a race), then the canonical summary.
func emitCanonical(w io.Writer, cells []sweep.CellResult, res *sweep.Result) error {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Index < cells[j].Index })
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i := range cells {
		if err := enc.Encode(sweep.StreamRow{Type: "cell", Cell: &cells[i]}); err != nil {
			return err
		}
	}
	return enc.Encode(sweep.StreamRow{Type: "summary", Summary: sweep.CanonicalResult(res)})
}

// summary renders the aggregate result in one stderr line.
func summary(res *sweep.Result) string {
	s := fmt.Sprintf("%d/%d cells in %s (workers=%d, failed=%d",
		res.Completed, res.TotalCells,
		time.Duration(res.WallMillis*float64(time.Millisecond)).Round(time.Millisecond),
		res.Workers, res.Failed)
	if res.Cancelled {
		s += ", cancelled"
	}
	s += ")"
	if sim := res.Simulation; sim != nil {
		s += fmt.Sprintf("; simulate: %d/%d converged, parallel p50=%.1f p95=%.1f",
			sim.Converged, sim.Cells, sim.ParallelP50, sim.ParallelP95)
	}
	if v := res.Verification; v != nil {
		s += fmt.Sprintf("; verify: %d/%d allOK", v.AllOK, v.Cells)
	}
	if c := res.Certification; c != nil {
		s += fmt.Sprintf("; certify: %d ok, maxA=%d", c.OK, c.MaxA)
	}
	return s
}

// csvHeader names the flattened per-cell columns; kind-specific columns are
// empty for other kinds.
var csvHeader = []string{
	"index", "protocol", "param", "size", "kind", "ok", "error",
	"cacheHit", "elapsedMillis", "states",
	"converged", "output", "interactions", "parallelTime", "meanParallel", "p95Parallel",
	"verifyAllOK", "verifyFailures",
	"certA", "certB", "coverLen1", "coverLen0",
}

// csvRow flattens one cell result into the csvHeader columns.
func csvRow(cr sweep.CellResult) []string {
	row := make([]string, len(csvHeader))
	row[0] = strconv.Itoa(cr.Index)
	row[1] = cr.Protocol
	if cr.Param != nil {
		row[2] = strconv.FormatInt(*cr.Param, 10)
	}
	if cr.Size > 0 {
		row[3] = strconv.FormatInt(cr.Size, 10)
	}
	row[4] = string(cr.Kind)
	row[5] = strconv.FormatBool(cr.OK)
	row[6] = cr.Error
	row[7] = strconv.FormatBool(cr.CacheHit)
	row[8] = strconv.FormatFloat(cr.ElapsedMillis, 'f', 3, 64)
	r := cr.Result
	if r == nil {
		return row
	}
	if r.Protocol != nil {
		row[9] = strconv.Itoa(r.Protocol.States)
	}
	if s := r.Simulation; s != nil {
		row[10] = strconv.FormatBool(s.Converged)
		row[11] = strconv.Itoa(s.Output)
		if est := s.Estimate; est != nil {
			row[14] = strconv.FormatFloat(est.MeanParallel, 'f', 2, 64)
			row[15] = strconv.FormatFloat(est.P95Parallel, 'f', 2, 64)
		} else {
			row[12] = strconv.FormatInt(s.Interactions, 10)
			row[13] = strconv.FormatFloat(s.ParallelTime, 'f', 2, 64)
		}
	}
	if v := r.Verification; v != nil {
		row[16] = strconv.FormatBool(v.AllOK)
		row[17] = strconv.Itoa(len(v.Failures))
	}
	if c := r.Certificate; c != nil {
		row[18] = strconv.FormatInt(c.A, 10)
		row[19] = strconv.FormatInt(c.B, 10)
	}
	if c := r.Cover; c != nil {
		row[20] = strconv.Itoa(c.MaxLen1)
		row[21] = strconv.Itoa(c.MaxLen0)
	}
	return row
}
