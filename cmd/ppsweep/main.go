// Command ppsweep executes a declarative scenario sweep — a cartesian grid
// of protocols × predicate parameters × population sizes × analysis kinds —
// and emits one output row per completed cell, incrementally, as CSV or
// NDJSON ready for plotting.
//
// Usage:
//
//	ppsweep -spec sweep.json                  # NDJSON rows to stdout
//	ppsweep -spec sweep.json -format csv      # CSV rows to stdout
//	ppsweep -spec - -workers 8 < sweep.json   # spec from stdin, 8 workers
//
// The spec format is documented in docs/api.md (the same document POST
// /v1/sweep accepts); examples/sweep holds a runnable flock-of-birds
// threshold sweep. Rows stream in completion order and carry the cell's
// grid index, so interrupted output is still attributable; the aggregate
// summary goes to stderr, keeping stdout machine-readable.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/sweep"
)

func main() { cli.Main("ppsweep", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppsweep", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "sweep spec file (JSON; \"-\" for stdin)")
		format   = fs.String("format", "ndjson", "output format: ndjson or csv")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		timeout  = fs.Duration("timeout", 0, "overall sweep deadline (0 = none)")
		quiet    = fs.Bool("quiet", false, "suppress the stderr summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("missing -spec (a JSON sweep spec file, or - for stdin)")
	}
	var (
		data []byte
		err  error
	)
	if *specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*specPath)
	}
	if err != nil {
		return err
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var emit func(sweep.CellResult) error
	switch *format {
	case "ndjson":
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		emit = func(cr sweep.CellResult) error { return enc.Encode(cr) }
	case "csv":
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		if err := w.Write(csvHeader); err != nil {
			return err
		}
		emit = func(cr sweep.CellResult) error {
			if err := w.Write(csvRow(cr)); err != nil {
				return err
			}
			w.Flush() // incremental: each row is visible as it completes
			return w.Error()
		}
	default:
		return fmt.Errorf("unknown -format %q (ndjson|csv)", *format)
	}

	var emitErr error
	res, err := sweep.Run(ctx, engine.New(), spec, sweep.RunOptions{
		Workers: *workers,
		OnCell: func(cr sweep.CellResult) {
			if emitErr == nil {
				emitErr = emit(cr)
			}
		},
	})
	if emitErr != nil {
		return emitErr
	}
	if res != nil && !*quiet {
		fmt.Fprintf(os.Stderr, "ppsweep: %s\n", summary(res))
	}
	return err
}

// summary renders the aggregate result in one stderr line.
func summary(res *sweep.Result) string {
	s := fmt.Sprintf("%d/%d cells in %s (workers=%d, failed=%d",
		res.Completed, res.TotalCells,
		time.Duration(res.WallMillis*float64(time.Millisecond)).Round(time.Millisecond),
		res.Workers, res.Failed)
	if res.Cancelled {
		s += ", cancelled"
	}
	s += ")"
	if sim := res.Simulation; sim != nil {
		s += fmt.Sprintf("; simulate: %d/%d converged, parallel p50=%.1f p95=%.1f",
			sim.Converged, sim.Cells, sim.ParallelP50, sim.ParallelP95)
	}
	if v := res.Verification; v != nil {
		s += fmt.Sprintf("; verify: %d/%d allOK", v.AllOK, v.Cells)
	}
	if c := res.Certification; c != nil {
		s += fmt.Sprintf("; certify: %d ok, maxA=%d", c.OK, c.MaxA)
	}
	return s
}

// csvHeader names the flattened per-cell columns; kind-specific columns are
// empty for other kinds.
var csvHeader = []string{
	"index", "protocol", "param", "size", "kind", "ok", "error",
	"cacheHit", "elapsedMillis", "states",
	"converged", "output", "interactions", "parallelTime", "meanParallel", "p95Parallel",
	"verifyAllOK", "verifyFailures",
	"certA", "certB", "coverLen1", "coverLen0",
}

// csvRow flattens one cell result into the csvHeader columns.
func csvRow(cr sweep.CellResult) []string {
	row := make([]string, len(csvHeader))
	row[0] = strconv.Itoa(cr.Index)
	row[1] = cr.Protocol
	if cr.Param != nil {
		row[2] = strconv.FormatInt(*cr.Param, 10)
	}
	if cr.Size > 0 {
		row[3] = strconv.FormatInt(cr.Size, 10)
	}
	row[4] = string(cr.Kind)
	row[5] = strconv.FormatBool(cr.OK)
	row[6] = cr.Error
	row[7] = strconv.FormatBool(cr.CacheHit)
	row[8] = strconv.FormatFloat(cr.ElapsedMillis, 'f', 3, 64)
	r := cr.Result
	if r == nil {
		return row
	}
	if r.Protocol != nil {
		row[9] = strconv.Itoa(r.Protocol.States)
	}
	if s := r.Simulation; s != nil {
		row[10] = strconv.FormatBool(s.Converged)
		row[11] = strconv.Itoa(s.Output)
		if est := s.Estimate; est != nil {
			row[14] = strconv.FormatFloat(est.MeanParallel, 'f', 2, 64)
			row[15] = strconv.FormatFloat(est.P95Parallel, 'f', 2, 64)
		} else {
			row[12] = strconv.FormatInt(s.Interactions, 10)
			row[13] = strconv.FormatFloat(s.ParallelTime, 'f', 2, 64)
		}
	}
	if v := r.Verification; v != nil {
		row[16] = strconv.FormatBool(v.AllOK)
		row[17] = strconv.Itoa(len(v.Failures))
	}
	if c := r.Certificate; c != nil {
		row[18] = strconv.FormatInt(c.A, 10)
		row[19] = strconv.FormatInt(c.B, 10)
	}
	if c := r.Cover; c != nil {
		row[20] = strconv.Itoa(c.MaxLen1)
		row[21] = strconv.Itoa(c.MaxLen0)
	}
	return row
}
