// Command ppcertify runs the paper's pumping arguments on a protocol and
// emits a portable, machine-checkable certificate that "if this protocol
// computes x ≥ η, then η ≤ A" — or re-checks a previously saved
// certificate from scratch.
//
// Usage:
//
//	ppcertify -protocol binary:7                     # find, check, print
//	ppcertify -protocol binary:7 -o cert.json        # save
//	ppcertify -protocol binary:7 -check cert.json    # re-verify a file
//	ppcertify -protocol leaderflock:3 -pipeline chain
//
// Pipelines: "leaderless" (Theorem 5.9; leaderless protocols only) or
// "chain" (Theorem 4.5; also works with leaders).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/pump"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppcertify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppcertify", flag.ContinueOnError)
	var (
		spec     = fs.String("protocol", "", "built-in protocol spec")
		file     = fs.String("file", "", "JSON protocol file")
		pipeline = fs.String("pipeline", "leaderless", "proof pipeline: leaderless (Thm 5.9) or chain (Thm 4.5)")
		out      = fs.String("o", "", "write the certificate JSON to this file")
		check    = fs.String("check", "", "re-check an existing certificate file instead of finding one")
		seed     = fs.Uint64("seed", 1, "finder seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProtocol(*spec, *file)
	if err != nil {
		return err
	}
	fmt.Printf("protocol: %s (%d states, leaderless=%t)\n", p.Name(), p.NumStates(), p.Leaderless())

	if *check != "" {
		return checkFile(p, *pipeline, *check)
	}

	var (
		data []byte
		a, b int64
	)
	switch *pipeline {
	case "leaderless":
		cert, err := pump.FindLeaderless(p, pump.FindOptions{Seed: *seed})
		if err != nil {
			return err
		}
		if err := pump.CheckLeaderless(p, cert, nil); err != nil {
			return fmt.Errorf("self-check failed: %w", err)
		}
		a, b = cert.A, cert.B
		data, err = json.MarshalIndent(cert, "", "  ")
		if err != nil {
			return err
		}
	case "chain":
		cert, err := pump.FindChain(p, pump.FindOptions{Seed: *seed})
		if err != nil {
			return err
		}
		if err := pump.CheckChain(p, cert, nil); err != nil {
			return fmt.Errorf("self-check failed: %w", err)
		}
		a, b = cert.A, cert.B
		data, err = json.MarshalIndent(cert, "", "  ")
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown pipeline %q (leaderless|chain)", *pipeline)
	}
	fmt.Printf("certificate found and checked: if %s computes x ≥ η, then η ≤ %d (pump step %d)\n",
		p.Name(), a, b)
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("written to %s (%d bytes)\n", *out, len(data))
	} else {
		fmt.Println(string(data))
	}
	return nil
}

func checkFile(p *protocol.Protocol, pipeline, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch pipeline {
	case "leaderless":
		var cert pump.LeaderlessCertificate
		if err := json.Unmarshal(data, &cert); err != nil {
			return err
		}
		if err := pump.CheckLeaderless(p, &cert, nil); err != nil {
			return fmt.Errorf("REJECTED: %w", err)
		}
		fmt.Printf("certificate VALID: if %s computes x ≥ η, then η ≤ %d\n", p.Name(), cert.A)
	case "chain":
		var cert pump.ChainCertificate
		if err := json.Unmarshal(data, &cert); err != nil {
			return err
		}
		if err := pump.CheckChain(p, &cert, nil); err != nil {
			return fmt.Errorf("REJECTED: %w", err)
		}
		fmt.Printf("certificate VALID: if %s computes x ≥ η, then η ≤ %d\n", p.Name(), cert.A)
	default:
		return fmt.Errorf("unknown pipeline %q", pipeline)
	}
	return nil
}

func loadProtocol(spec, file string) (*protocol.Protocol, error) {
	switch {
	case spec != "" && file != "":
		return nil, fmt.Errorf("use either -protocol or -file, not both")
	case spec != "":
		e, err := protocols.FromName(spec)
		if err != nil {
			return nil, err
		}
		return e.Protocol, nil
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return protocol.Parse(data)
	default:
		return nil, fmt.Errorf("missing -protocol or -file")
	}
}
