// Command ppcertify runs the paper's pumping arguments on a protocol and
// emits a portable, machine-checkable certificate that "if this protocol
// computes x ≥ η, then η ≤ A" — or re-checks a previously saved
// certificate from scratch.
//
// Usage:
//
//	ppcertify -protocol binary:7                     # find, check, print
//	ppcertify -protocol binary:7 -o cert.json        # save
//	ppcertify -protocol binary:7 -check cert.json    # re-verify a file
//	ppcertify -protocol leaderflock:3 -pipeline chain
//
// Pipelines: "leaderless" (Theorem 5.9; leaderless protocols only) or
// "chain" (Theorem 4.5; also works with leaders).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/pump"
)

func main() { cli.Main("ppcertify", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppcertify", flag.ContinueOnError)
	var (
		spec     = fs.String("protocol", "", cli.SpecUsage)
		file     = fs.String("file", "", "JSON protocol file")
		pipeline = fs.String("pipeline", "leaderless", "proof pipeline: leaderless (Thm 5.9) or chain (Thm 4.5)")
		out      = fs.String("o", "", "write the certificate JSON to this file")
		check    = fs.String("check", "", "re-check an existing certificate file instead of finding one")
		seed     = fs.Uint64("seed", 1, "finder seed")
		workers  = fs.Int("stable-workers", 0, "goroutines per stable-set analysis fixpoint (0 = sequential; results are bit-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ref, err := cli.ProtocolRef(*spec, *file)
	if err != nil {
		return err
	}
	eng := engine.New()
	eng.SetStableWorkers(*workers)
	entry, err := eng.Resolve(ref)
	if err != nil {
		return err
	}
	p := entry.Protocol
	fmt.Printf("protocol: %s (%d states, leaderless=%t)\n", p.Name(), p.NumStates(), p.Leaderless())

	if *check != "" {
		return checkFile(p, *pipeline, *check)
	}

	var kind engine.Kind
	switch *pipeline {
	case "leaderless":
		kind = engine.KindCertifyLeaderless
	case "chain":
		kind = engine.KindCertifyChain
	default:
		return fmt.Errorf("unknown pipeline %q (leaderless|chain)", *pipeline)
	}
	res, err := eng.Do(context.Background(), engine.Request{Kind: kind, Protocol: ref, Seed: *seed})
	if err != nil {
		return err
	}
	cert := res.Certificate
	var payload any = cert.Leaderless
	if cert.Chain != nil {
		payload = cert.Chain
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("certificate found and checked: if %s computes x ≥ η, then η ≤ %d (pump step %d)\n",
		p.Name(), cert.A, cert.B)
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("written to %s (%d bytes)\n", *out, len(data))
	} else {
		fmt.Println(string(data))
	}
	return nil
}

func checkFile(p *protocol.Protocol, pipeline, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch pipeline {
	case "leaderless":
		var cert pump.LeaderlessCertificate
		if err := json.Unmarshal(data, &cert); err != nil {
			return err
		}
		if err := pump.CheckLeaderless(p, &cert, nil); err != nil {
			return fmt.Errorf("REJECTED: %w", err)
		}
		fmt.Printf("certificate VALID: if %s computes x ≥ η, then η ≤ %d\n", p.Name(), cert.A)
	case "chain":
		var cert pump.ChainCertificate
		if err := json.Unmarshal(data, &cert); err != nil {
			return err
		}
		if err := pump.CheckChain(p, &cert, nil); err != nil {
			return fmt.Errorf("REJECTED: %w", err)
		}
		fmt.Printf("certificate VALID: if %s computes x ≥ η, then η ≤ %d\n", p.Name(), cert.A)
	default:
		return fmt.Errorf("unknown pipeline %q", pipeline)
	}
	return nil
}
