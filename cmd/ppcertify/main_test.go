package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFindAndCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cert := filepath.Join(dir, "cert.json")
	if err := run([]string{"-protocol", "flock:3", "-o", cert, "-seed", "17"}); err != nil {
		t.Fatalf("find: %v", err)
	}
	if _, err := os.Stat(cert); err != nil {
		t.Fatalf("certificate not written: %v", err)
	}
	if err := run([]string{"-protocol", "flock:3", "-check", cert}); err != nil {
		t.Fatalf("check: %v", err)
	}
	// Checking against a different protocol must fail.
	if err := run([]string{"-protocol", "flock:4", "-check", cert}); err == nil {
		t.Fatal("certificate for flock:3 must not validate against flock:4")
	}
}

func TestChainPipeline(t *testing.T) {
	dir := t.TempDir()
	cert := filepath.Join(dir, "chain.json")
	if err := run([]string{"-protocol", "leaderflock:2", "-pipeline", "chain", "-o", cert}); err != nil {
		t.Fatalf("chain find: %v", err)
	}
	if err := run([]string{"-protocol", "leaderflock:2", "-pipeline", "chain", "-check", cert}); err != nil {
		t.Fatalf("chain check: %v", err)
	}
}

func TestPrintWithoutOutput(t *testing.T) {
	if err := run([]string{"-protocol", "succinct:2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string][]string{
		"no protocol":       nil,
		"bad pipeline":      {"-protocol", "flock:3", "-pipeline", "zzz"},
		"leaders vs ll":     {"-protocol", "leaderflock:2", "-pipeline", "leaderless"},
		"missing cert file": {"-protocol", "flock:3", "-check", "/nonexistent.json"},
		"both sources":      {"-protocol", "flock:3", "-file", "x.json"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
