package main

import "testing"

func TestRunTwoStates(t *testing.T) {
	if err := run([]string{"-states", "2", "-max-input", "7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCapped(t *testing.T) {
	if err := run([]string{"-states", "3", "-cap", "500", "-max-input", "5", "-f=false"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-states", "9"}); err == nil {
		t.Error("too many states should error")
	}
	if err := run([]string{"-states", "0"}); err == nil {
		t.Error("zero states should error")
	}
}
