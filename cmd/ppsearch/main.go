// Command ppsearch enumerates every deterministic leaderless protocol with
// a given number of states and measures the empirical busy beaver function
// BB(n) (Definition 1) and the Section 4.1 quantity f(n).
//
// Usage:
//
//	ppsearch -states 2 -max-input 9
//	ppsearch -states 3 -max-input 8           # exhaustive: ~373k protocols
//	ppsearch -states 3 -cap 50000             # capped sample
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/search"
)

func main() { cli.Main("ppsearch", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppsearch", flag.ContinueOnError)
	var (
		states   = fs.Int("states", 2, "number of states to enumerate")
		maxInput = fs.Int64("max-input", 9, "verify thresholds for inputs up to this bound")
		cap      = fs.Int("cap", 0, "stop after this many candidates (0 = exhaustive)")
		withF    = fs.Bool("f", true, "also measure the §4.1 quantity f(n)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *states < 1 || *states > 4 {
		return fmt.Errorf("-states must be 1..4 (the 4-state space is astronomically large; use -cap)")
	}
	opts := search.Options{MaxInput: *maxInput, MaxCandidates: *cap}

	start := time.Now()
	res := search.BusyBeaver(*states, opts)
	fmt.Printf("%s  [%s]\n", res.String(), time.Since(start).Round(time.Millisecond))
	if res.Best != nil {
		fmt.Printf("witness protocol:\n%s", res.Best.String())
	}
	if *withF {
		start = time.Now()
		fres, err := search.F(*states, opts)
		if err != nil {
			return err
		}
		fmt.Printf("\nf(%d) = %d restricted to inputs ≤ %d (candidates %d, exhaustive %t)  [%s]\n",
			fres.States, fres.MaxMinInput, fres.MaxInput, fres.Candidates, fres.Exhaustive,
			time.Since(start).Round(time.Millisecond))
		if fres.Witness != nil {
			fmt.Printf("witness protocol:\n%s", fres.Witness.String())
		}
	}
	return nil
}
