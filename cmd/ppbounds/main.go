// Command ppbounds prints the paper's explicit constants and busy beaver
// bounds for a given number of states: the small basis constant β
// (Definition 3), ϑ (Lemma 3.2), the Pottier constant ξ (Definition 6),
// the Theorem 5.9 leaderless upper bound, and the Theorem 2.2 lower bounds.
//
// Usage:
//
//	ppbounds -n 4
//	ppbounds -n 4 -t 10      # with an explicit transition count for ξ
//	ppbounds -protocol succinct:3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bounds"
	"repro/internal/protocols"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppbounds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppbounds", flag.ContinueOnError)
	var (
		n    = fs.Int64("n", 0, "number of states")
		t    = fs.Int64("t", 0, "number of transitions (default: n(n+1)/2, the deterministic count)")
		spec = fs.String("protocol", "", "built-in protocol spec: derive n and t from it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec != "" {
		e, err := protocols.FromName(*spec)
		if err != nil {
			return err
		}
		*n = int64(e.Protocol.NumStates())
		*t = int64(e.Protocol.NumTransitions())
		fmt.Printf("protocol %s: |Q| = %d, |T| = %d, leaderless = %t\n\n",
			e.Protocol.Name(), *n, *t, e.Protocol.Leaderless())
	}
	if *n < 1 {
		return fmt.Errorf("need -n ≥ 1 or -protocol")
	}
	if *t == 0 {
		*t = *n * (*n + 1) / 2
	}

	fmt.Printf("paper constants for n = %d states, |T| = %d transitions\n", *n, *t)
	fmt.Printf("  β(n)  = 2^(2(2n+1)!+1)        = %s\n", bounds.Beta(*n))
	fmt.Printf("  ϑ(n)  = 2^((2n+2)!)           = %s\n", bounds.Theta(*n))
	fmt.Printf("  ξ     = 2(2|T|+1)^|Q|         = %s\n", bounds.Xi(*t, *n))
	fmt.Printf("  ξdet  = 2(|Q|+2)^|Q|          = %s   (Remark 1, deterministic protocols)\n",
		bounds.XiDeterministic(*n))
	fmt.Println()
	fmt.Printf("busy beaver bounds\n")
	fmt.Printf("  BB(n)  ≥ %s    (Theorem 2.2 via P'_(n−2))\n", bounds.BBLowerLeaderless(*n))
	fmt.Printf("  BB(n)  ≤ ξ·n·β·3ⁿ = %s    (Theorem 5.9, leaderless)\n", bounds.Theorem59(*n, *t))
	fmt.Printf("  BB(n)  ≤ 2^((2n+2)!) = %s    (Theorem 5.9, simplified)\n", bounds.Theorem59Simplified(*n))
	fmt.Printf("  BBL(n) ≥ %s    (Theorem 2.2, with leaders)\n", bounds.BBLLowerWithLeaders(*n))
	fmt.Printf("  BBL(n) < F_{ℓ,ϑ(n)} at level F_ω of the Fast-Growing Hierarchy (Theorem 4.5)\n")
	return nil
}
