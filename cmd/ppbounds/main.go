// Command ppbounds prints the paper's explicit constants and busy beaver
// bounds for a given number of states: the small basis constant β
// (Definition 3), ϑ (Lemma 3.2), the Pottier constant ξ (Definition 6),
// the Theorem 5.9 leaderless upper bound, and the Theorem 2.2 lower bounds.
//
// Usage:
//
//	ppbounds -n 4
//	ppbounds -n 4 -t 10      # with an explicit transition count for ξ
//	ppbounds -protocol succinct:3
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/engine"
)

func main() { cli.Main("ppbounds", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppbounds", flag.ContinueOnError)
	var (
		n    = fs.Int64("n", 0, "number of states")
		t    = fs.Int64("t", 0, "number of transitions (default: n(n+1)/2, the deterministic count)")
		spec = fs.String("protocol", "", "built-in protocol spec: derive n and t from it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := engine.Request{Kind: engine.KindBounds, States: *n, Transitions: *t}
	if *spec != "" {
		req.Protocol = engine.ProtocolRef{Spec: *spec}
	} else if *n < 1 {
		return fmt.Errorf("need -n ≥ 1 or -protocol")
	}

	res, err := engine.New().Do(context.Background(), req)
	if err != nil {
		return err
	}
	if info := res.Protocol; info != nil {
		fmt.Printf("protocol %s: |Q| = %d, |T| = %d, leaderless = %t\n\n",
			info.Name, info.States, info.Transitions, info.Leaderless)
	}
	b := res.Bounds
	fmt.Printf("paper constants for n = %d states, |T| = %d transitions\n", b.States, b.Transitions)
	fmt.Printf("  β(n)  = 2^(2(2n+1)!+1)        = %s\n", b.Beta)
	fmt.Printf("  ϑ(n)  = 2^((2n+2)!)           = %s\n", b.Theta)
	fmt.Printf("  ξ     = 2(2|T|+1)^|Q|         = %s\n", b.Xi)
	fmt.Printf("  ξdet  = 2(|Q|+2)^|Q|          = %s   (Remark 1, deterministic protocols)\n",
		b.XiDeterministic)
	fmt.Println()
	fmt.Printf("busy beaver bounds\n")
	fmt.Printf("  BB(n)  ≥ %s    (Theorem 2.2 via P'_(n−2))\n", b.BBLowerLeaderless)
	fmt.Printf("  BB(n)  ≤ ξ·n·β·3ⁿ = %s    (Theorem 5.9, leaderless)\n", b.Theorem59)
	fmt.Printf("  BB(n)  ≤ 2^((2n+2)!) = %s    (Theorem 5.9, simplified)\n", b.Theorem59Simplified)
	fmt.Printf("  BBL(n) ≥ %s    (Theorem 2.2, with leaders)\n", b.BBLLowerWithLeaders)
	fmt.Printf("  BBL(n) < F_{ℓ,ϑ(n)} at level F_ω of the Fast-Growing Hierarchy (Theorem 4.5)\n")
	return nil
}
