package main

import "testing"

func TestRunWithN(t *testing.T) {
	if err := run([]string{"-n", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-n", "3", "-t", "10"}); err != nil {
		t.Fatalf("run with -t: %v", err)
	}
}

func TestRunWithProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "succinct:3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -n should error")
	}
	if err := run([]string{"-protocol", "zzz"}); err == nil {
		t.Error("bad spec should error")
	}
}
