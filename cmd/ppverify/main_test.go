package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltin(t *testing.T) {
	if err := run([]string{"-protocol", "binary:5", "-max", "7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-protocol", "majority", "-max", "5"}); err != nil {
		t.Fatalf("run majority: %v", err)
	}
}

func TestRunFileWithThreshold(t *testing.T) {
	// The all-convert protocol computes x ≥ 2 (constant true on valid
	// inputs).
	spec := `{
	  "name": "all-yes",
	  "states": [{"name": "n", "output": 0}, {"name": "y", "output": 1}],
	  "transitions": [["n","n","y","y"], ["n","y","y","y"]],
	  "inputs": {"x": "n"},
	  "completeWithIdentity": true
	}`
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-threshold", "2", "-max", "6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"no source":    {"-max", "4"},
		"bad spec":     {"-protocol", "zzz"},
		"file needs φ": {"-file", "/nonexistent.json"},
		"missing file": {"-file", "/nonexistent.json", "-threshold", "2"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
