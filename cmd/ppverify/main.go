// Command ppverify exactly verifies a population protocol against a
// predicate for every input up to a bound, using bottom-SCC analysis of the
// configuration graph (sound and complete per input).
//
// Usage:
//
//	ppverify -protocol binary:11 -max 13        # against its built-in spec
//	ppverify -file p.json -threshold 5 -max 10  # file protocol vs x ≥ 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/engine"
)

func main() { cli.Main("ppverify", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppverify", flag.ContinueOnError)
	var (
		spec      = fs.String("protocol", "", "built-in protocol spec (verified against its own predicate)")
		file      = fs.String("file", "", "JSON protocol file (needs -threshold or -mod)")
		threshold = fs.Int64("threshold", 0, "verify against x ≥ threshold (file protocols)")
		modM      = fs.Int64("mod", 0, "verify against x ≡ r (mod m): modulus")
		modR      = fs.Int64("res", 0, "verify against x ≡ r (mod m): residue")
		minSize   = fs.Int64("min", 2, "smallest input size")
		maxSize   = fs.Int64("max", 8, "largest input size")
		limit     = fs.Int("limit", 0, "configuration graph limit per input (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ref, err := cli.ProtocolRef(*spec, *file)
	if err != nil {
		return err
	}
	req := engine.Request{
		Kind:     engine.KindVerify,
		Protocol: ref,
		MinSize:  *minSize,
		MaxSize:  *maxSize,
		Limit:    *limit,
	}
	// Builtin specs are verified against their own predicate; the
	// -threshold/-mod flags apply to file protocols only (as before the
	// engine rewrite).
	if *file != "" {
		switch {
		case *threshold > 0:
			req.Predicate = &engine.PredicateSpec{Kind: "counting", Threshold: *threshold}
		case *modM > 0:
			req.Predicate = &engine.PredicateSpec{Kind: "mod", Modulus: *modM, Residue: *modR}
		default:
			return fmt.Errorf("file protocols need -threshold or -mod/-res")
		}
	}

	eng := engine.New()
	res, err := eng.Do(context.Background(), req)
	if err != nil {
		return err
	}
	fmt.Printf("protocol: %s (%d states)\npredicate: %s\n",
		res.Protocol.Name, res.Protocol.States, res.Verification.Predicate)
	fmt.Println(res.Verification.Summary)
	if !res.Verification.AllOK {
		os.Exit(2)
	}
	return nil
}
