// Command ppverify exactly verifies a population protocol against a
// predicate for every input up to a bound, using bottom-SCC analysis of the
// configuration graph (sound and complete per input).
//
// Usage:
//
//	ppverify -protocol binary:11 -max 13        # against its built-in spec
//	ppverify -file p.json -threshold 5 -max 10  # file protocol vs x ≥ 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pred"
	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/reach"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppverify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppverify", flag.ContinueOnError)
	var (
		spec      = fs.String("protocol", "", "built-in protocol spec (verified against its own predicate)")
		file      = fs.String("file", "", "JSON protocol file (needs -threshold or -mod)")
		threshold = fs.Int64("threshold", 0, "verify against x ≥ threshold (file protocols)")
		modM      = fs.Int64("mod", 0, "verify against x ≡ r (mod m): modulus")
		modR      = fs.Int64("res", 0, "verify against x ≡ r (mod m): residue")
		minSize   = fs.Int64("min", 2, "smallest input size")
		maxSize   = fs.Int64("max", 8, "largest input size")
		limit     = fs.Int("limit", 0, "configuration graph limit per input (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		p   *protocol.Protocol
		phi pred.Pred
	)
	switch {
	case *spec != "":
		e, err := protocols.FromName(*spec)
		if err != nil {
			return err
		}
		p, phi = e.Protocol, e.Pred
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		p, err = protocol.Parse(data)
		if err != nil {
			return err
		}
		switch {
		case *threshold > 0:
			phi = pred.NewCounting(*threshold)
		case *modM > 0:
			phi = pred.NewModCounting(*modM, *modR)
		default:
			return fmt.Errorf("file protocols need -threshold or -mod/-res")
		}
	default:
		return fmt.Errorf("missing -protocol or -file")
	}

	fmt.Printf("protocol: %s (%d states)\npredicate: %s\n", p.Name(), p.NumStates(), phi)
	rep, err := reach.VerifyRange(p, phi, *minSize, *maxSize, *limit)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if !rep.AllOK() {
		os.Exit(2)
	}
	return nil
}
