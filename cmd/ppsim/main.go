// Command ppsim simulates a population protocol under the uniform random
// scheduler and reports the stable outcome and parallel time.
//
// Usage:
//
//	ppsim -protocol flock:8 -input 20
//	ppsim -protocol majority -input 12,9 -runs 20
//	ppsim -file proto.json -input 10 -seed 7 -exact
//
// Built-in protocol specs are documented in `ppsim -h` (flock:η,
// succinct:k, binary:η, majority, parity, mod:m:r, leaderflock:η).
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/engine"
)

func main() { cli.Main("ppsim", run) }

func run(args []string) error {
	fs := flag.NewFlagSet("ppsim", flag.ContinueOnError)
	var (
		spec    = fs.String("protocol", "", cli.SpecUsage)
		file    = fs.String("file", "", "JSON protocol file (alternative to -protocol)")
		input   = fs.String("input", "", "input multiset, e.g. \"20\" or \"12,9\" for two variables")
		seed    = fs.Uint64("seed", 1, "RNG seed")
		steps   = fs.Int64("steps", 0, "interaction budget (0 = default)")
		runs    = fs.Int("runs", 1, "number of runs (statistics over seeds)")
		exact   = fs.Bool("exact", false, "use the exact stable-set oracle (backward coverability) for convergence detection")
		workers = fs.Int("stable-workers", 0, "goroutines for the -exact oracle's fixpoint (0 = sequential; results are bit-identical)")
		trace   = fs.Int64("trace", 0, "print a configuration snapshot every N interactions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ref, err := cli.ProtocolRef(*spec, *file)
	if err != nil {
		return err
	}
	eng := engine.New()
	eng.SetStableWorkers(*workers)
	entry, err := eng.Resolve(ref)
	if err != nil {
		return err
	}
	p := entry.Protocol
	in, err := cli.ParseInput(*input, p.NumInputs())
	if err != nil {
		return err
	}
	c0 := p.InitialConfig(in)
	fmt.Printf("protocol: %s (%d states, %d transitions)\n", p.Name(), p.NumStates(), p.NumTransitions())
	fmt.Printf("input: %v → IC = %s (%d agents)\n", in, p.FormatConfig(c0), c0.Size())

	res, err := eng.Do(context.Background(), engine.Request{
		Kind:        engine.KindSimulate,
		Protocol:    ref,
		Input:       in,
		Seed:        *seed,
		MaxSteps:    *steps,
		Runs:        *runs,
		ExactOracle: *exact,
		TraceEvery:  *trace,
	})
	if err != nil {
		return err
	}
	st := res.Simulation
	if est := st.Estimate; est != nil {
		fmt.Printf("runs=%d converged=%d output=%d parallel(mean=%.1f median=%.1f p95=%.1f max=%.1f)\n",
			est.Runs, est.Converged, est.Output,
			est.MeanParallel, est.MedianParallel, est.P95Parallel, est.MaxParallel)
		if est.TotalInteractions > 0 && res.ElapsedMillis > 0 {
			fmt.Printf("executor: %d interactions in %.2f ms (%.2gM interactions/sec)\n",
				est.TotalInteractions, res.ElapsedMillis,
				float64(est.TotalInteractions)/res.ElapsedMillis/1000)
		}
		return nil
	}
	for _, tp := range st.Trace {
		fmt.Printf("  t=%-10d %s\n", tp.Interactions, tp.Config)
	}
	if !st.Converged {
		fmt.Printf("did not converge within %d interactions (parallel time %.1f)\n",
			st.Interactions, st.ParallelTime)
		return nil
	}
	fmt.Printf("stable output: %d after %d interactions (parallel time %.1f, consensus at %d)\n",
		st.Output, st.Interactions, st.ParallelTime, st.ConsensusAt)
	fmt.Printf("final configuration: %s\n", st.FinalFormatted)
	return nil
}
