// Command ppsim simulates a population protocol under the uniform random
// scheduler and reports the stable outcome and parallel time.
//
// Usage:
//
//	ppsim -protocol flock:8 -input 20
//	ppsim -protocol majority -input 12,9 -runs 20
//	ppsim -file proto.json -input 10 -seed 7 -exact
//
// Built-in protocol specs are documented in `ppsim -h` (flock:η,
// succinct:k, binary:η, majority, parity, mod:m:r, leaderflock:η).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/stable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppsim", flag.ContinueOnError)
	var (
		spec  = fs.String("protocol", "", "built-in protocol spec (flock:η, succinct:k, binary:η, majority, parity, mod:m:r, leaderflock:η)")
		file  = fs.String("file", "", "JSON protocol file (alternative to -protocol)")
		input = fs.String("input", "", "input multiset, e.g. \"20\" or \"12,9\" for two variables")
		seed  = fs.Uint64("seed", 1, "RNG seed")
		steps = fs.Int64("steps", 0, "interaction budget (0 = default)")
		runs  = fs.Int("runs", 1, "number of runs (statistics over seeds)")
		exact = fs.Bool("exact", false, "use the exact stable-set oracle (backward coverability) for convergence detection")
		trace = fs.Int64("trace", 0, "print a configuration snapshot every N interactions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProtocol(*spec, *file)
	if err != nil {
		return err
	}
	in, err := parseInput(*input, p.NumInputs())
	if err != nil {
		return err
	}
	c0 := p.InitialConfig(in)
	fmt.Printf("protocol: %s (%d states, %d transitions)\n", p.Name(), p.NumStates(), p.NumTransitions())
	fmt.Printf("input: %v → IC = %s (%d agents)\n", in, p.FormatConfig(c0), c0.Size())

	opts := sim.Options{Seed: *seed, MaxSteps: *steps, TraceEvery: *trace}
	if *exact {
		a, err := stable.Analyze(p, stable.Options{})
		if err != nil {
			return fmt.Errorf("stable-set analysis: %w", err)
		}
		opts.Oracle = a
	}
	if *runs <= 1 {
		st, err := sim.Run(p, c0, opts)
		if err != nil {
			return err
		}
		for _, tp := range st.Trace {
			fmt.Printf("  t=%-10d %s\n", tp.Interactions, p.FormatConfig(tp.Config))
		}
		if !st.Converged {
			fmt.Printf("did not converge within %d interactions (parallel time %.1f)\n",
				st.Interactions, st.ParallelTime)
			return nil
		}
		fmt.Printf("stable output: %d after %d interactions (parallel time %.1f, consensus at %d)\n",
			st.Output, st.Interactions, st.ParallelTime, st.ConsensusAt)
		fmt.Printf("final configuration: %s\n", p.FormatConfig(st.Final))
		return nil
	}
	est, err := sim.EstimateParallelTime(p, c0, *runs, opts)
	if err != nil {
		return err
	}
	fmt.Println(est)
	return nil
}

func loadProtocol(spec, file string) (*protocol.Protocol, error) {
	switch {
	case spec != "" && file != "":
		return nil, fmt.Errorf("use either -protocol or -file, not both")
	case spec != "":
		e, err := protocols.FromName(spec)
		if err != nil {
			return nil, err
		}
		return e.Protocol, nil
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return protocol.Parse(data)
	default:
		return nil, fmt.Errorf("missing -protocol or -file")
	}
}

func parseInput(s string, arity int) (multiset.Vec, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -input")
	}
	parts := strings.Split(s, ",")
	if len(parts) != arity {
		return nil, fmt.Errorf("input has %d components, protocol expects %d", len(parts), arity)
	}
	v := multiset.New(arity)
	for i, part := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad input component %q", part)
		}
		v[i] = n
	}
	if v.Size() < 2 {
		return nil, fmt.Errorf("populations need at least 2 agents, got %d", v.Size())
	}
	return v, nil
}
