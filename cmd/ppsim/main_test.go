package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "flock:4", "-input", "8", "-seed", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMultiInput(t *testing.T) {
	if err := run([]string{"-protocol", "majority", "-input", "5,2", "-seed", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithExactOracleAndRuns(t *testing.T) {
	if err := run([]string{"-protocol", "succinct:2", "-input", "9", "-exact", "-runs", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run([]string{"-protocol", "parity", "-input", "5", "-trace", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFromFile(t *testing.T) {
	spec := `{
	  "name": "all-yes",
	  "states": [{"name": "n", "output": 0}, {"name": "y", "output": 1}],
	  "transitions": [["n","n","y","y"], ["n","y","y","y"]],
	  "inputs": {"x": "n"},
	  "completeWithIdentity": true
	}`
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-input", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"no protocol":       {"-input", "4"},
		"both sources":      {"-protocol", "parity", "-file", "x.json", "-input", "4"},
		"bad spec":          {"-protocol", "zzz", "-input", "4"},
		"missing input":     {"-protocol", "parity"},
		"wrong arity":       {"-protocol", "majority", "-input", "4"},
		"negative input":    {"-protocol", "parity", "-input", "-3"},
		"population of one": {"-protocol", "parity", "-input", "1"},
		"missing file":      {"-file", "/nonexistent.json", "-input", "4"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
