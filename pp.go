package pp

import (
	"context"

	"repro/internal/bounds"
	"repro/internal/dioph"
	"repro/internal/engine"
	"repro/internal/pred"
	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/pump"
	"repro/internal/reach"
	"repro/internal/realise"
	"repro/internal/saturate"
	"repro/internal/sim"
	"repro/internal/stable"
	"repro/internal/sweep"
)

// The analysis engine: one typed Request/Result API over every analysis in
// the library. Engines resolve protocols through a registry (compact specs
// like "flock:8", inline JSON, user constructors added with Register) and
// memoize expensive per-protocol artifacts behind a content-hash cache.
type (
	// Engine executes analysis requests; see NewEngine.
	Engine = engine.Engine
	// Request is one JSON-round-trippable analysis job.
	Request = engine.Request
	// Result is the typed answer to a Request.
	Result = engine.Result
	// AnalysisKind names an analysis (simulate, verify, stable, ...).
	AnalysisKind = engine.Kind
	// ProtocolRef names a protocol: registry spec or inline JSON.
	ProtocolRef = engine.ProtocolRef
	// PredicateSpec describes the predicate of a verify request.
	PredicateSpec = engine.PredicateSpec
	// ProtocolRegistry resolves spec strings to protocols.
	ProtocolRegistry = protocols.Registry
	// ProtocolConstructor builds a protocol entry from spec arguments.
	ProtocolConstructor = protocols.Constructor
)

// The analysis kinds.
const (
	KindSimulate          = engine.KindSimulate
	KindVerify            = engine.KindVerify
	KindStable            = engine.KindStable
	KindCertifyChain      = engine.KindCertifyChain
	KindCertifyLeaderless = engine.KindCertifyLeaderless
	KindSaturate          = engine.KindSaturate
	KindBasis             = engine.KindBasis
	KindBounds            = engine.KindBounds
	KindCover             = engine.KindCover
)

// Scenario sweeps: a declarative grid of analysis cells (protocol templates
// × predicate parameters × population sizes × kinds) executed on a worker
// pool over one engine. The cmd/ppsweep tool and the ppserve POST /v1/sweep
// endpoint run the same specs.
type (
	// SweepSpec declares a sweep grid; see the sweep package for the JSON
	// format and examples/sweep for a runnable spec.
	SweepSpec = sweep.Spec
	// SweepCell is one expanded grid point with its engine request.
	SweepCell = sweep.Cell
	// SweepCellResult is the streamed outcome of one executed cell.
	SweepCellResult = sweep.CellResult
	// SweepResult aggregates a whole sweep run.
	SweepResult = sweep.Result
	// SweepRunOptions sets the worker-pool size and the per-cell observer.
	SweepRunOptions = sweep.RunOptions
)

// ParseSweepSpec decodes and validates a JSON sweep spec.
func ParseSweepSpec(data []byte) (SweepSpec, error) { return sweep.ParseSpec(data) }

// Sweep expands a spec and executes every cell against eng on a worker
// pool, streaming completed cells to opts.OnCell and returning the
// aggregate. Cancelling ctx interrupts in-flight cells and skips the rest.
// (This is the batch entry point beside Engine.Do; it is a function rather
// than a method because Engine is an alias of the internal engine type.)
func Sweep(ctx context.Context, eng *Engine, spec SweepSpec, opts SweepRunOptions) (*SweepResult, error) {
	return sweep.Run(ctx, eng, spec, opts)
}

// NewEngine returns an engine backed by the default protocol registry.
func NewEngine() *Engine { return engine.New() }

// NewEngineWithRegistry returns an engine with its own registry.
func NewEngineWithRegistry(reg *ProtocolRegistry) *Engine {
	return engine.NewWithRegistry(reg)
}

// NewRegistry returns an empty registry resolving the builtin zoo.
func NewRegistry() *ProtocolRegistry { return protocols.NewRegistry() }

// Register adds a user protocol constructor to the default registry,
// making it resolvable by name in requests ("myproto:3").
func Register(name string, ctor ProtocolConstructor) error {
	return protocols.Register(name, ctor)
}

// ErrBadRequest wraps every request-validation failure.
var ErrBadRequest = engine.ErrBadRequest

// Core model types, re-exported from the internal packages.
type (
	// Protocol is an immutable population protocol (Q, T, L, X, I, O).
	Protocol = protocol.Protocol
	// Builder assembles protocols; see NewBuilder.
	Builder = protocol.Builder
	// State indexes a protocol state.
	State = protocol.State
	// Config is a configuration: a multiset of states (agent counts).
	Config = protocol.Config
	// Transition is a pair transition ⟅p,q⟆ ↦ ⟅p',q'⟆.
	Transition = protocol.Transition
	// Pred is a Presburger predicate (threshold, modulo, boolean
	// combinations).
	Pred = pred.Pred
	// Entry pairs a zoo protocol with the predicate it computes.
	Entry = protocols.Entry
)

// NewBuilder starts building a protocol with the given name.
func NewBuilder(name string) *Builder { return protocol.NewBuilder(name) }

// ParseProtocol decodes a protocol from its JSON representation.
func ParseProtocol(data []byte) (*Protocol, error) { return protocol.Parse(data) }

// Predicate constructors.
var (
	// Counting returns the predicate x ≥ η.
	Counting = pred.NewCounting
	// ModCounting returns the predicate x ≡ r (mod m).
	ModCounting = pred.NewModCounting
	// MajorityPred returns the predicate x_A > x_B.
	MajorityPred = pred.NewMajority
)

// Protocol zoo (each returns an Entry with the protocol and its predicate).
var (
	// FlockOfBirds is Example 2.1's P_k generalised to any threshold η
	// (η+1 states).
	FlockOfBirds = protocols.FlockOfBirds
	// Succinct is Example 2.1's P'_k computing x ≥ 2^k with k+2 states.
	Succinct = protocols.Succinct
	// BinaryThreshold computes x ≥ η with O(log η) states (Theorem 2.2,
	// Ω direction).
	BinaryThreshold = protocols.BinaryThreshold
	// Majority is the classic 4-state protocol for x_A > x_B.
	Majority = protocols.Majority
	// ModuloIn computes "x mod m ∈ R" with m+2 states.
	ModuloIn = protocols.ModuloIn
	// Parity computes "x is odd".
	Parity = protocols.Parity
	// LeaderFlock computes x ≥ η with one leader (exercises leader
	// semantics).
	LeaderFlock = protocols.LeaderFlock
	// Product combines two protocols under a boolean connective.
	Product = protocols.Product
	// Negate flips all outputs, computing the negated predicate.
	Negate = protocols.Negate
	// Catalog returns the built-in protocol collection.
	Catalog = protocols.Catalog
)

// Boolean connectives for Product.
const (
	OpAnd = protocols.OpAnd
	OpOr  = protocols.OpOr
)

// Simulation (uniform random scheduler; fair with probability 1).
type (
	// SimOptions configures a simulation run.
	SimOptions = sim.Options
	// SimStats reports one simulated execution.
	SimStats = sim.Stats
	// Oracle detects stable configurations during simulation.
	Oracle = sim.Oracle
)

// Simulate runs the protocol from configuration c0 until stability is
// detected or the step budget is exhausted.
func Simulate(p *Protocol, c0 Config, opts SimOptions) (SimStats, error) {
	return sim.Run(p, c0, opts)
}

// EstimateParallelTime aggregates convergence statistics over repeated
// runs.
var EstimateParallelTime = sim.EstimateParallelTime

// SimulateReplicas executes many replicas of one workload across a worker
// pool, reusing per-worker scratch (transition tables, sampling tree,
// configuration buffer) across replicas and streaming the outcomes into an
// aggregate. Replica i runs with seed ReplicaSeed(baseSeed, i); the
// aggregate is deterministic for a fixed base seed whatever the worker
// count.
var SimulateReplicas = sim.RunReplicas

// ReplicaSeed derives per-replica RNG seeds from a base seed with a
// SplitMix64-style mix; all multi-replica simulation entry points use it.
var ReplicaSeed = sim.ReplicaSeed

// Exact verification (sound and complete per input, via bottom-SCC
// analysis of the configuration graph).
type (
	// VerifyReport aggregates exact verification results.
	VerifyReport = reach.Report
)

// Verify checks that the protocol computes phi for every input of total
// size in [minSize, maxSize]; limit bounds each configuration graph
// (0 = default).
func Verify(p *Protocol, phi Pred, minSize, maxSize int64, limit int) (*VerifyReport, error) {
	return reach.VerifyRange(p, phi, minSize, maxSize, limit)
}

// ObservedThreshold returns the smallest accepted input of a single-input
// protocol, verifying monotone threshold behaviour up to maxInput.
var ObservedThreshold = reach.ThresholdWitness

// Stable sets (Definition 2 / Lemma 3.2), computed for all population
// sizes by backward coverability.
type (
	// StableAnalysis holds SC_0 and SC_1 with their ideal bases; it also
	// implements Oracle for exact convergence detection in simulations.
	StableAnalysis = stable.Analysis
	// StableOptions configures AnalyzeStableSetsOpts: basis cap,
	// cooperative interrupt, and the parallel fixpoint worker count.
	StableOptions = stable.Options
)

// AnalyzeStableSets computes SC_0 and SC_1 exactly.
func AnalyzeStableSets(p *Protocol) (*StableAnalysis, error) {
	return stable.Analyze(p, stable.Options{})
}

// AnalyzeStableSetsOpts computes SC_0 and SC_1 with explicit options.
// Options.Workers shards each backward-coverability round across
// goroutines; the result is bit-identical to the sequential analysis for
// any worker count.
func AnalyzeStableSetsOpts(p *Protocol, opts StableOptions) (*StableAnalysis, error) {
	return stable.Analyze(p, opts)
}

// Pumping certificates (the paper's proofs, executable).
type (
	// ChainCertificate is the Theorem 4.5 certificate (works with
	// leaders).
	ChainCertificate = pump.ChainCertificate
	// LeaderlessCertificate is the Theorem 5.9 certificate.
	LeaderlessCertificate = pump.LeaderlessCertificate
	// PumpOptions configures the certificate finders.
	PumpOptions = pump.FindOptions
)

// Certificate finders and checkers.
var (
	// FindChainCertificate builds a Lemma 4.1/4.2 certificate.
	FindChainCertificate = pump.FindChain
	// FindLeaderlessCertificate builds a Lemma 5.2 certificate.
	FindLeaderlessCertificate = pump.FindLeaderless
	// CheckChainCertificate validates independently.
	CheckChainCertificate = pump.CheckChain
	// CheckLeaderlessCertificate validates independently.
	CheckLeaderlessCertificate = pump.CheckLeaderless
)

// SimulateConcurrent runs independent simulations across a worker pool;
// results are in seed order and deterministic for a fixed base seed.
var SimulateConcurrent = sim.RunConcurrent

// WriteTraceCSV exports a simulation trace for plotting.
var WriteTraceCSV = sim.WriteTraceCSV

// ExploreParallel builds the exact configuration graph with a
// frontier-parallel BFS; the result — node numbering included — is
// identical to sequential exploration for every worker count.
var ExploreParallel = reach.ExploreParallel

// CoverLengths returns, per target, the shortest covering-execution length
// from start (-1 if uncoverable), tracking all targets in one goal-directed
// BFS that stops at the first level covering the last outstanding target.
var CoverLengths = reach.CoverLengths

// Section 5.3/5.4 machinery.
type (
	// SaturationWitness is the Lemma 5.4 result: IC(3^j) reaches a
	// 1-saturated configuration via an explicit sequence.
	SaturationWitness = saturate.Result
	// TransitionMultiset is a multiset over transition indices (π, θ).
	TransitionMultiset = realise.TransitionMultiset
)

// Saturate runs the Lemma 5.4 construction on a leaderless single-input
// protocol.
var Saturate = saturate.Saturate

// RealisableBasis computes the generating basis of potentially realisable
// transition multisets (Definition 4 / Corollary 5.7).
func RealisableBasis(p *Protocol) ([]TransitionMultiset, error) {
	return realise.Basis(p, dioph.Options{})
}

// Paper constants, exact.
var (
	// Beta is the small basis constant β(n) = 2^(2(2n+1)!+1).
	Beta = bounds.Beta
	// Theta is ϑ(n) = 2^((2n+2)!).
	Theta = bounds.Theta
	// Xi is the Pottier constant 2(2|T|+1)^|Q|.
	Xi = bounds.Xi
	// Theorem59Bound is the busy beaver bound ξ·n·β·3ⁿ.
	Theorem59Bound = bounds.Theorem59
)
