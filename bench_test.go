package pp_test

import (
	"context"
	"testing"

	pp "repro"
	"repro/internal/dioph"
	"repro/internal/experiments"
	"repro/internal/protocols"
	"repro/internal/reach"
	"repro/internal/realise"
	"repro/internal/sim"
	"repro/internal/stable"
)

// ---------------------------------------------------------------------------
// One benchmark per experiment table (E1–E11). Each runs the table
// generator in quick mode; `go run ./cmd/ppexperiments` prints the full
// tables.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, run func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 99}
	for i := 0; i < b.N; i++ {
		tb, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1FlockOfBirds(b *testing.B)    { benchExperiment(b, experiments.E1Example21) }
func BenchmarkE2BinaryThreshold(b *testing.B) { benchExperiment(b, experiments.E2BinaryThreshold) }
func BenchmarkE3StableBasis(b *testing.B)     { benchExperiment(b, experiments.E3StableBases) }
func BenchmarkE4Saturation(b *testing.B)      { benchExperiment(b, experiments.E4Saturation) }
func BenchmarkE5Pottier(b *testing.B)         { benchExperiment(b, experiments.E5Pottier) }
func BenchmarkE6PumpingCertificate(b *testing.B) {
	benchExperiment(b, experiments.E6PumpingCertificates)
}
func BenchmarkE7Bounds(b *testing.B)           { benchExperiment(b, experiments.E7BoundsTable) }
func BenchmarkE8BusyBeaverSearch(b *testing.B) { benchExperiment(b, experiments.E8BusyBeaverSearch) }
func BenchmarkE9ControlledSequences(b *testing.B) {
	benchExperiment(b, experiments.E9ControlledSequences)
}
func BenchmarkE10ParallelTime(b *testing.B) { benchExperiment(b, experiments.E10ParallelTime) }
func BenchmarkE11CoverLengths(b *testing.B) { benchExperiment(b, experiments.E11CoverLengths) }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core engines.
// ---------------------------------------------------------------------------

// BenchmarkSimInteractions measures raw scheduler throughput
// (interactions/op) on a 10^4-agent flock.
func BenchmarkSimInteractions(b *testing.B) {
	e := protocols.FlockOfBirds(8)
	p := e.Protocol
	c0 := p.InitialConfigN(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(p, c0, sim.Options{
			Seed:     uint64(i),
			MaxSteps: 100_000,
			// No oracle checks: measure the interaction loop itself.
			CheckEvery: 1 << 62,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Interactions == 0 {
			b.Fatal("no interactions")
		}
	}
	b.ReportMetric(100_000, "interactions/op")
}

// BenchmarkSimConvergence measures end-to-end convergence of the succinct
// protocol with the exact stable-set oracle.
func BenchmarkSimConvergence(b *testing.B) {
	e := protocols.Succinct(3)
	p := e.Protocol
	a, err := stable.Analyze(p, stable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c0 := p.InitialConfigN(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(p, c0, sim.Options{Seed: uint64(i), Oracle: a})
		if err != nil || !st.Converged {
			b.Fatalf("run %d: %v converged=%t", i, err, st.Converged)
		}
	}
}

// BenchmarkExplore measures exact state-space exploration (configurations
// per op reported).
func BenchmarkExplore(b *testing.B) {
	e := protocols.FlockOfBirds(6)
	p := e.Protocol
	c0 := p.InitialConfigN(12)
	var configs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := reach.Explore(p, c0, 0)
		if err != nil {
			b.Fatal(err)
		}
		configs = g.Len()
	}
	b.ReportMetric(float64(configs), "configs")
}

// BenchmarkSCC measures the Tarjan decomposition on an explored graph.
func BenchmarkSCC(b *testing.B) {
	e := protocols.FlockOfBirds(6)
	p := e.Protocol
	g, err := reach.Explore(p, p.InitialConfigN(12), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info := g.SCCs()
		if info.NumComps == 0 {
			b.Fatal("no components")
		}
	}
}

// BenchmarkBackwardCoverability measures stable-set computation.
func BenchmarkBackwardCoverability(b *testing.B) {
	e := protocols.BinaryThreshold(11)
	p := e.Protocol
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stable.Analyze(p, stable.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHilbertBasis measures the Contejean–Devie solver on the
// realisability system of a mid-sized protocol.
func BenchmarkHilbertBasis(b *testing.B) {
	e := protocols.Succinct(4)
	p := e.Protocol
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis, err := realise.Basis(p, dioph.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(basis) == 0 {
			b.Fatal("empty basis")
		}
	}
}

// BenchmarkPumpPipeline measures the full Theorem 5.9 certificate pipeline.
func BenchmarkPumpPipeline(b *testing.B) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert, err := pp.FindLeaderlessCertificate(p, pp.PumpOptions{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := pp.CheckLeaderlessCertificate(p, cert, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyExhaustive measures exhaustive verification of the
// majority protocol over all inputs of size ≤ 8.
func BenchmarkVerifyExhaustive(b *testing.B) {
	e := protocols.Majority()
	for i := 0; i < b.N; i++ {
		rep, err := reach.VerifyRange(e.Protocol, e.Pred, 2, 8, 0)
		if err != nil || !rep.AllOK() {
			b.Fatalf("%v / %v", err, rep)
		}
	}
}

// ---------------------------------------------------------------------------
// Engine cache benchmarks: the memoization win for repeated requests
// against the same protocol (stable-set analysis behind the content-hash
// cache). Miss recomputes the artifact every iteration; hit serves it from
// the cache.
// ---------------------------------------------------------------------------

var engineStableReq = pp.Request{
	Kind:     pp.KindStable,
	Protocol: pp.ProtocolRef{Spec: "binary:11"},
}

// BenchmarkEngineCacheMiss measures a cold engine per iteration: every
// stable request recomputes the backward-coverability analysis.
func BenchmarkEngineCacheMiss(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		eng := pp.NewEngine()
		res, err := eng.Do(ctx, engineStableReq)
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheHit {
			b.Fatal("cold engine must miss")
		}
	}
}

// BenchmarkEngineCacheHit measures a warmed engine: identical requests are
// served from the content-hash cache.
func BenchmarkEngineCacheHit(b *testing.B) {
	ctx := context.Background()
	eng := pp.NewEngine()
	if _, err := eng.Do(ctx, engineStableReq); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Do(ctx, engineStableReq)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("warm engine must hit")
		}
	}
}
