package pp_test

import (
	"fmt"
	"strings"
	"testing"

	pp "repro"
	"repro/internal/multiset"
)

// TestFacadeEndToEnd drives the whole public API surface: build, verify,
// simulate, analyse, certify.
func TestFacadeEndToEnd(t *testing.T) {
	e := pp.Succinct(2) // x ≥ 4 with 4 states
	p := e.Protocol

	// Exact verification for all inputs up to 8.
	rep, err := pp.Verify(p, e.Pred, 2, 8, 0)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.AllOK() {
		t.Fatalf("verification failed:\n%s", rep)
	}

	// Exact stable-set oracle + simulation.
	analysis, err := pp.AnalyzeStableSets(p)
	if err != nil {
		t.Fatalf("AnalyzeStableSets: %v", err)
	}
	st, err := pp.Simulate(p, p.InitialConfigN(20), pp.SimOptions{Seed: 5, Oracle: analysis})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !st.Converged || st.Output != 1 {
		t.Fatalf("simulation: %+v", st)
	}

	// Observed threshold matches the predicate.
	eta, found, err := pp.ObservedThreshold(p, 9, 0)
	if err != nil || !found || eta != 4 {
		t.Fatalf("ObservedThreshold = %d,%t,%v; want 4", eta, found, err)
	}

	// Pumping certificates, both pipelines.
	ll, err := pp.FindLeaderlessCertificate(p, pp.PumpOptions{Seed: 1})
	if err != nil {
		t.Fatalf("FindLeaderlessCertificate: %v", err)
	}
	if err := pp.CheckLeaderlessCertificate(p, ll, nil); err != nil {
		t.Fatalf("CheckLeaderlessCertificate: %v", err)
	}
	ch, err := pp.FindChainCertificate(p, pp.PumpOptions{Seed: 1})
	if err != nil {
		t.Fatalf("FindChainCertificate: %v", err)
	}
	if err := pp.CheckChainCertificate(p, ch, nil); err != nil {
		t.Fatalf("CheckChainCertificate: %v", err)
	}
}

func TestFacadeBuilderAndJSON(t *testing.T) {
	b := pp.NewBuilder("demo")
	q0 := b.AddState("no", 0)
	q1 := b.AddState("yes", 1)
	b.AddTransition(q0, q0, q1, q1)
	b.AddTransition(q0, q1, q1, q1)
	b.AddInput("x", q0)
	p, err := b.CompleteWithIdentity().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	q, err := pp.ParseProtocol(data)
	if err != nil {
		t.Fatalf("ParseProtocol: %v", err)
	}
	if q.NumStates() != 2 {
		t.Fatalf("round trip: %d states", q.NumStates())
	}
}

func TestFacadeBounds(t *testing.T) {
	if pp.Beta(1).String() != "8192" {
		t.Fatalf("Beta(1) = %s", pp.Beta(1))
	}
	if pp.Xi(3, 2).Int64() != 98 {
		t.Fatalf("Xi(3,2) = %s", pp.Xi(3, 2))
	}
	if pp.Theorem59Bound(2, 3).Mantissa.Int64() != 1764 {
		t.Fatalf("Theorem59Bound mantissa = %s", pp.Theorem59Bound(2, 3).Mantissa)
	}
}

func TestFacadeSaturationAndRealisability(t *testing.T) {
	e := pp.FlockOfBirds(4)
	p := e.Protocol
	res, err := pp.Saturate(p)
	if err != nil {
		t.Fatalf("Saturate: %v", err)
	}
	if !p.Saturated(res.Config, 1) {
		t.Fatal("saturation witness invalid")
	}
	basis, err := pp.RealisableBasis(p)
	if err != nil {
		t.Fatalf("RealisableBasis: %v", err)
	}
	if len(basis) == 0 {
		t.Fatal("empty realisable basis")
	}
}

func TestFacadeConcurrentSimAndParallelExplore(t *testing.T) {
	e := pp.Succinct(2)
	p := e.Protocol
	stats, err := pp.SimulateConcurrent(p, p.InitialConfigN(12), 4, pp.SimOptions{Seed: 3}, 2)
	if err != nil {
		t.Fatalf("SimulateConcurrent: %v", err)
	}
	for _, st := range stats {
		if !st.Converged || st.Output != 1 {
			t.Fatalf("bad run: %+v", st)
		}
	}
	g, err := pp.ExploreParallel(p, p.InitialConfigN(6), 0, 2)
	if err != nil {
		t.Fatalf("ExploreParallel: %v", err)
	}
	if b, ok := g.FairOutput(); !ok || b != 1 {
		t.Fatalf("fair output %d,%t", b, ok)
	}
}

func TestFacadeTraceCSVAndDOT(t *testing.T) {
	e := pp.Parity()
	p := e.Protocol
	st, err := pp.Simulate(p, p.InitialConfigN(5), pp.SimOptions{Seed: 1, TraceEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := pp.WriteTraceCSV(&csv, p, st); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	if !strings.HasPrefix(csv.String(), "interactions,") {
		t.Fatalf("csv header: %q", csv.String()[:30])
	}
	var dot strings.Builder
	if err := p.WriteDOT(&dot); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Fatal("DOT output malformed")
	}
}

func TestFacadePredicates(t *testing.T) {
	if !pp.Counting(3).Eval(multiset.Vec{5}) || pp.Counting(3).Eval(multiset.Vec{2}) {
		t.Fatal("Counting wrong")
	}
	if !pp.ModCounting(3, 1).Eval(multiset.Vec{4}) {
		t.Fatal("ModCounting wrong")
	}
	if !pp.MajorityPred().Eval(multiset.Vec{3, 2}) {
		t.Fatal("MajorityPred wrong")
	}
}

// ExampleSimulate demonstrates the quickest route from a zoo protocol to a
// simulated verdict.
func ExampleSimulate() {
	e := pp.FlockOfBirds(5) // computes x ≥ 5
	p := e.Protocol
	st, err := pp.Simulate(p, p.InitialConfigN(8), pp.SimOptions{Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Println("stable output:", st.Output)
	// Output: stable output: 1
}

// ExampleVerify demonstrates exact verification by bottom-SCC analysis.
func ExampleVerify() {
	e := pp.Majority()
	rep, err := pp.Verify(e.Protocol, e.Pred, 2, 6, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("all inputs correct:", rep.AllOK())
	// Output: all inputs correct: true
}

// TestEngineFacade drives the analysis engine through the public facade:
// registry resolution, a user-registered constructor, request execution,
// and the content-hash cache.
func TestEngineFacade(t *testing.T) {
	reg := pp.NewRegistry()
	if err := reg.Register("twice", func(args []string) (pp.Entry, error) {
		if len(args) != 1 {
			return pp.Entry{}, fmt.Errorf("twice needs one argument")
		}
		var eta int64
		if _, err := fmt.Sscanf(args[0], "%d", &eta); err != nil {
			return pp.Entry{}, err
		}
		return pp.FlockOfBirds(2 * eta), nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	eng := pp.NewEngineWithRegistry(reg)

	res, err := eng.Do(t.Context(), pp.Request{
		Kind:     pp.KindSimulate,
		Protocol: pp.ProtocolRef{Spec: "twice:3"}, // flock-of-birds, η = 6
		Input:    []int64{10},
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !res.Simulation.Converged || res.Simulation.Output != 1 {
		t.Fatalf("twice:3 on 10 agents should accept: %+v", res.Simulation)
	}
	if res.Protocol.States != 7 {
		t.Errorf("twice:3 should have 7 states, got %d", res.Protocol.States)
	}

	// Second stable request hits the cache through the facade too.
	for i, wantHit := range []bool{false, true} {
		res, err := eng.Do(t.Context(), pp.Request{Kind: pp.KindStable, Protocol: pp.ProtocolRef{Spec: "twice:3"}})
		if err != nil {
			t.Fatalf("stable %d: %v", i, err)
		}
		if res.CacheHit != wantHit {
			t.Errorf("stable request %d: cacheHit=%t, want %t", i, res.CacheHit, wantHit)
		}
	}
}
