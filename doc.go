// Package pp is a Go library for population protocols, built as a faithful,
// executable reproduction of
//
//	Czerner, Esparza, Leroux: "Lower Bounds on the State Complexity of
//	Population Protocols", PODC 2021 (arXiv:2102.11619).
//
// Population protocols (Angluin et al.) are networks of indistinguishable
// finite-state agents that interact in uniformly random pairs and decide
// predicates over their initial configuration by stable consensus. The
// paper bounds the *busy beaver function* of the model: how large a
// threshold η can a protocol with n states decide (predicate x ≥ η)?
//
// # The analysis engine
//
// The public surface is the analysis engine: one typed, JSON-round-trippable
// Request/Result model covering every analysis in the library.
//
//	eng := pp.NewEngine()
//	res, err := eng.Do(ctx, pp.Request{
//		Kind:     pp.KindSimulate,
//		Protocol: pp.ProtocolRef{Spec: "flock:8"},
//		Input:    []int64{20},
//	})
//
// Request kinds: simulate (stochastic simulation), verify (exact per-input
// verification), stable (stable sets SC_0/SC_1 with ideal bases),
// certify-chain and certify-leaderless (the paper's executable pumping
// certificates, Theorems 4.5 and 5.9), saturate (Lemma 5.4), basis
// (potentially realisable transition multisets, Definition 4), bounds
// (the paper's constants β, ϑ, ξ in exact arithmetic), and cover (shortest
// covering-execution lengths, the quantity Lemma 3.2 bounds by β).
//
// Protocols are resolved through a registry: compact spec strings
// ("flock:8", "binary:11", "mod:3:1"), inline JSON protocols (the Spec
// interchange format), or user constructors added with pp.Register. The
// engine memoizes expensive per-protocol artifacts — stable-set analyses
// and realisable bases — behind a content-hash cache, so repeated requests
// against the same protocol are near-free; Do takes a context.Context for
// cancellation and per-request deadlines. The cmd/ppserve daemon exposes
// the same model over HTTP (POST /v1/analyze), and all command line tools
// are thin adapters over it.
//
// # Scenario sweeps
//
// The paper's workloads are parametric — thresholds x ≥ c, predicates and
// population sizes swept over constants — so beside the one-request Do
// there is a batch entry point: a declarative SweepSpec expands a cartesian
// grid (protocol templates × parameters × population sizes × kinds, with
// explicit cross-product caps) into engine requests and executes them on a
// worker pool sharing the engine's artifact cache and cancellation.
//
//	spec, _ := pp.ParseSweepSpec([]byte(`{
//	    "protocols": [{"spec": "flock:{N}"}],
//	    "params":    [{"from": 2, "to": 9}],
//	    "kinds":     ["verify", "simulate"],
//	    "sizes":     ["{N}-1", "{N}", "{N}+1"],
//	    "options":   {"runs": 5}
//	}`))
//	res, err := pp.Sweep(ctx, eng, spec, pp.SweepRunOptions{
//	    OnCell: func(c pp.SweepCellResult) { fmt.Println(c.Index, c.Kind, c.OK) },
//	})
//
// Completed cells stream to OnCell as they finish; the returned SweepResult
// aggregates verdicts, convergence percentiles and wall time. The same spec
// runs unchanged via cmd/ppsweep (CSV/NDJSON output) and ppserve's
// streaming POST /v1/sweep endpoint; see examples/sweep and docs/api.md.
//
// # The library underneath
//
// The internal packages provide, per the paper's structure:
//
//   - the protocol model, a zoo of classic constructions (Example 2.1's
//     flock-of-birds and succinct protocols, binary thresholds, majority,
//     modulo, boolean products), and a JSON interchange format;
//   - a stochastic simulator (uniform random scheduler, pluggable exact
//     stability oracles) and an exact verifier (bottom-SCC analysis of the
//     finite configuration graph);
//   - stable-set computation via backward coverability, ideal bases (B,S),
//     and the small basis constant β of Lemma 3.2;
//   - a Contejean–Devie solver for the potentially realisable transition
//     multisets of Definition 4 and Pottier's bound (Theorem 5.6);
//   - executable pumping certificates implementing the proofs of
//     Theorem 4.5 (Dickson chains) and Theorem 5.9 (saturation +
//     concentration), with independent checkers;
//   - the paper's constants (β, ϑ, ξ) and bounds in exact arithmetic, the
//     Fast-Growing Hierarchy fragment of Section 4, and an exhaustive busy
//     beaver search for tiny protocols.
//
// Direct library entry points (Simulate, Verify, AnalyzeStableSets, the
// certificate finders, ...) remain exported for programmatic use when the
// request model is too coarse.
//
// See examples/quickstart for the engine walkthrough, examples/serve for
// the HTTP API, examples/sweep for a parametric scenario sweep, README.md
// for the architecture map, and docs/api.md for the HTTP reference.
// Regenerate the experiment tables with `go run ./cmd/ppexperiments`.
package pp
