// Package pp is a Go library for population protocols, built as a faithful,
// executable reproduction of
//
//	Czerner, Esparza, Leroux: "Lower Bounds on the State Complexity of
//	Population Protocols", PODC 2021 (arXiv:2102.11619).
//
// Population protocols (Angluin et al.) are networks of indistinguishable
// finite-state agents that interact in uniformly random pairs and decide
// predicates over their initial configuration by stable consensus. The
// paper bounds the *busy beaver function* of the model: how large a
// threshold η can a protocol with n states decide (predicate x ≥ η)?
//
// The library provides, per the paper's structure:
//
//   - the protocol model, a zoo of classic constructions (Example 2.1's
//     flock-of-birds and succinct protocols, binary thresholds, majority,
//     modulo, boolean products), and a JSON interchange format;
//   - a stochastic simulator (uniform random scheduler, pluggable exact
//     stability oracles) and an exact verifier (bottom-SCC analysis of the
//     finite configuration graph);
//   - stable-set computation via backward coverability, ideal bases (B,S),
//     and the small basis constant β of Lemma 3.2;
//   - a Contejean–Devie solver for the potentially realisable transition
//     multisets of Definition 4 and Pottier's bound (Theorem 5.6);
//   - executable pumping certificates implementing the proofs of
//     Theorem 4.5 (Dickson chains) and Theorem 5.9 (saturation +
//     concentration), with independent checkers;
//   - the paper's constants (β, ϑ, ξ) and bounds in exact arithmetic, the
//     Fast-Growing Hierarchy fragment of Section 4, and an exhaustive busy
//     beaver search for tiny protocols.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced results (regenerate them with
// `go run ./cmd/ppexperiments`).
package pp
