#!/usr/bin/env bash
# bench.sh — run the pinned benchmark suites and record the numbers.
#
# Two suites, one JSON file each:
#
#   reach   BenchmarkExplore*/BenchmarkCover*/BenchmarkMaxCover* in
#           internal/reach (includes the retained pre-arena core as the
#           "before" side)                          → BENCH_reach.json
#   sim     BenchmarkSimStep*/BenchmarkRunReplicas* in internal/sim
#           (includes the retained linear-scan core as the "before" side)
#                                                   → BENCH_sim.json
#   stable  BenchmarkStableAnalyze* in internal/stable (includes the
#           retained seed fixpoint as the "before" side; expect the Naive
#           benchmark to take minutes per iteration)  → BENCH_stable.json
#   parallel  the Arena/Parallel pairs from reach and stable re-run under
#           GOMAXPROCS=${PARALLEL_GOMAXPROCS:-4}, so the record has a row
#           where the worker pools actually run concurrently
#                                                   → BENCH_parallel.json
#   sweep   BenchmarkSweepIncremental/BenchmarkSweepFromScratch in
#           internal/sweep — extending an analyzed family ramp over a warm
#           artifact store vs recomputing the grid cold; always runs at
#           -benchtime 1x (only the first iteration is the extend
#           scenario: it writes the delta through, so later iterations
#           would measure a fully warm store)         → BENCH_sweep.json
#
# Usage:
#   scripts/bench.sh                   # all suites, full run
#   scripts/bench.sh sim               # one suite
#   BENCHTIME=1x scripts/bench.sh      # smoke run (CI)
#   OUT_SIM=/tmp/s.json scripts/bench.sh sim   # alternate output path
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2s}"
suites="${1:-all}"

# Temp files are cleaned up on any exit, including a failing `go test`
# under `set -e`.
tmpfiles=()
trap 'rm -f "${tmpfiles[@]:-}"' EXIT

# render <suite> <notes> <raw-file> <out-file>: turn `go test -bench` output
# into the committed JSON shape.
render() {
  awk -v suite="$1" -v notes="$2" \
      -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      -v goversion="$(go version | awk '{print $3}')" \
      -v benchtime="$benchtime" \
      -v maxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}" \
      -v hostcpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
  name = $1; iters = $2
  sub(/-[0-9]+$/, "", name) # drop the GOMAXPROCS suffix: names must match across machines
  ns = ""; bytes = ""; allocs = ""; metrics = ""
  for (i = 3; i < NF; i += 2) {
    v = $i; u = $(i + 1)
    if (u == "ns/op") ns = v
    else if (u == "B/op") bytes = v
    else if (u == "allocs/op") allocs = v
    else {
      if (metrics != "") metrics = metrics ", "
      metrics = metrics "\"" u "\": " v
    }
  }
  row = "    {\"name\": \"" name "\", \"iterations\": " iters
  if (ns != "")     row = row ", \"ns_per_op\": " ns
  if (bytes != "")  row = row ", \"bytes_per_op\": " bytes
  if (allocs != "") row = row ", \"allocs_per_op\": " allocs
  if (metrics != "") row = row ", \"metrics\": {" metrics "}"
  row = row "}"
  rows[n++] = row
}
END {
  print "{"
  print "  \"suite\": \"" suite "\","
  print "  \"date\": \"" date "\","
  print "  \"go\": \"" goversion "\","
  print "  \"cpu\": \"" cpu "\","
  print "  \"gomaxprocs\": " maxprocs ","
  print "  \"host_cpus\": " hostcpus ","
  print "  \"benchtime\": \"" benchtime "\","
  print "  \"notes\": \"" notes "\","
  print "  \"benchmarks\": ["
  for (i = 0; i < n; i++) print rows[i] (i < n - 1 ? "," : "")
  print "  ]"
  print "}"
}' "$3" > "$4"
  echo "wrote $4" >&2
}

run_reach() {
  local out="${OUT_REACH:-BENCH_reach.json}"
  local tmp
  tmp="$(mktemp)"
  tmpfiles+=("$tmp")
  go test ./internal/reach -run '^$' \
    -bench 'Benchmark(Explore|Cover|MaxCover)' \
    -benchmem -benchtime "$benchtime" -count 1 | tee "$tmp" >&2
  render reach \
    "*Naive benchmarks run the retained pre-arena core (the before side of the comparison); parallel scaling requires gomaxprocs > 1" \
    "$tmp" "$out"
}

run_sim() {
  local out="${OUT_SIM:-BENCH_sim.json}"
  local tmp
  tmp="$(mktemp)"
  tmpfiles+=("$tmp")
  go test ./internal/sim -run '^$' \
    -bench 'Benchmark(SimStep|RunReplicas)' \
    -benchmem -benchtime "$benchtime" -count 1 | tee "$tmp" >&2
  render sim \
    "SimStepReference runs the retained linear-scan core and RunReplicasRebuild the per-replica-rebuild baseline (the before sides); the SimStep/SimStepReference interactions/sec ratio is the pinned single-thread speedup on the Q=132 product workload" \
    "$tmp" "$out"
}

run_stable() {
  local out="${OUT_STABLE:-BENCH_stable.json}"
  local tmp
  tmp="$(mktemp)"
  tmpfiles+=("$tmp")
  go test ./internal/stable -run '^$' \
    -bench 'BenchmarkStableAnalyze' \
    -benchmem -benchtime "$benchtime" -count 1 -timeout 2h | tee "$tmp" >&2
  render stable \
    "StableAnalyzeNaive runs the retained seed fixpoint (the before side; the seed complementation cannot finish this workload, so the baseline borrows the production complementation — the fixpoint ratio is conservative); pinned workload binary:104, |U_0 basis| = 11538; parallel scaling requires gomaxprocs > 1" \
    "$tmp" "$out"
}

run_parallel() {
  # The parallel suites re-run the Arena (sequential baseline) and
  # Parallel benchmarks under an explicit GOMAXPROCS > 1 so the committed
  # record has a row where the worker pools can actually run concurrently
  # — the other suites inherit whatever the host offers, which on a
  # 1-core machine pins Parallel to a sequential schedule.
  local out="${OUT_PARALLEL:-BENCH_parallel.json}"
  local procs="${PARALLEL_GOMAXPROCS:-4}"
  local tmp
  tmp="$(mktemp)"
  tmpfiles+=("$tmp")
  GOMAXPROCS="$procs" go test ./internal/reach -run '^$' \
    -bench 'BenchmarkExplore(Arena|Parallel)' \
    -benchmem -benchtime "$benchtime" -count 1 | tee "$tmp" >&2
  GOMAXPROCS="$procs" go test ./internal/stable -run '^$' \
    -bench 'BenchmarkStableAnalyze(Arena|Parallel)' \
    -benchmem -benchtime "$benchtime" -count 1 -timeout 2h | tee -a "$tmp" >&2
  GOMAXPROCS="$procs" render parallel \
    "Arena rows are the sequential baseline, Parallel rows the worker-pool analyses, both under GOMAXPROCS=$procs; when gomaxprocs exceeds host_cpus the schedule is oversubscribed and the ratio is a lower bound on real multi-core scaling" \
    "$tmp" "$out"
}

run_sweep() {
  # The incremental/from-scratch pair is pinned at one iteration each: the
  # incremental benchmark's first iteration is the extend scenario (29
  # durable hits + 2 delta computes) and writes the delta through, so any
  # further iteration would measure a fully warm store instead. BENCHTIME
  # is deliberately ignored here.
  local out="${OUT_SWEEP:-BENCH_sweep.json}"
  local benchtime=1x # shadows the global for the render call below
  local tmp
  tmp="$(mktemp)"
  tmpfiles+=("$tmp")
  go test ./internal/sweep -run '^$' \
    -bench 'BenchmarkSweep(Incremental|FromScratch)' \
    -benchtime 1x -count 1 -timeout 1h | tee "$tmp" >&2
  render sweep \
    "Extend scenario for the delta-aware sweep path: the binary-threshold ramp 42..70 is analyzed with a durable artifact store, then the grid is widened to 40..70 (new-cells/op = 2, placed at the cheap end of the superlinear ramp so the ratio measures grid reuse rather than the irreducible delta compute); Incremental restores the 29 analyzed cells and computes only the delta, FromScratch recomputes all 31 cells cold with the delta path disabled — the FromScratch/Incremental ns_per_op ratio is the committed aggregate speedup" \
    "$tmp" "$out"
}

case "$suites" in
  reach)    run_reach ;;
  sim)      run_sim ;;
  stable)   run_stable ;;
  parallel) run_parallel ;;
  sweep)    run_sweep ;;
  all)      run_reach; run_sim; run_stable; run_parallel; run_sweep ;;
  *) echo "usage: scripts/bench.sh [reach|sim|stable|parallel|sweep|all]" >&2; exit 2 ;;
esac
