#!/usr/bin/env bash
# bench.sh — run the reachability-core benchmarks and pin the numbers.
#
# Runs the BenchmarkExplore*/BenchmarkCover*/BenchmarkMaxCover* suite in
# internal/reach (which includes the retained pre-arena core as the
# "before" side) and writes the results as JSON, so the performance
# trajectory can be tracked across PRs.
#
# Usage:
#   scripts/bench.sh                 # full run, writes BENCH_reach.json
#   BENCHTIME=1x scripts/bench.sh    # smoke run (CI)
#   OUT=/tmp/b.json scripts/bench.sh # alternate output path
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2s}"
out="${OUT:-BENCH_reach.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/reach -run '^$' \
  -bench 'Benchmark(Explore|Cover|MaxCover)' \
  -benchmem -benchtime "$benchtime" -count 1 | tee "$tmp" >&2

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go version | awk '{print $3}')" \
    -v benchtime="$benchtime" \
    -v maxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
  name = $1; iters = $2
  sub(/-[0-9]+$/, "", name) # drop the GOMAXPROCS suffix: names must match across machines
  ns = ""; bytes = ""; allocs = ""; metrics = ""
  for (i = 3; i < NF; i += 2) {
    v = $i; u = $(i + 1)
    if (u == "ns/op") ns = v
    else if (u == "B/op") bytes = v
    else if (u == "allocs/op") allocs = v
    else {
      if (metrics != "") metrics = metrics ", "
      metrics = metrics "\"" u "\": " v
    }
  }
  row = "    {\"name\": \"" name "\", \"iterations\": " iters
  if (ns != "")     row = row ", \"ns_per_op\": " ns
  if (bytes != "")  row = row ", \"bytes_per_op\": " bytes
  if (allocs != "") row = row ", \"allocs_per_op\": " allocs
  if (metrics != "") row = row ", \"metrics\": {" metrics "}"
  row = row "}"
  rows[n++] = row
}
END {
  print "{"
  print "  \"suite\": \"reach\","
  print "  \"date\": \"" date "\","
  print "  \"go\": \"" goversion "\","
  print "  \"cpu\": \"" cpu "\","
  print "  \"gomaxprocs\": " maxprocs ","
  print "  \"benchtime\": \"" benchtime "\","
  print "  \"notes\": \"*Naive benchmarks run the retained pre-arena core (the before side of the comparison); parallel scaling requires gomaxprocs > 1\","
  print "  \"benchmarks\": ["
  for (i = 0; i < n; i++) print rows[i] (i < n - 1 ? "," : "")
  print "  ]"
  print "}"
}' "$tmp" > "$out"

echo "wrote $out" >&2
