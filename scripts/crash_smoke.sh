#!/usr/bin/env bash
# crash_smoke.sh — kill -9 crash-recovery equivalence check.
#
# Boots a real journaled ppserve coordinator (-journal-dir, -artifact-dir)
# on loopback TCP, streams a sweep into it, SIGKILLs the process after a
# handful of cells have been journaled, restarts it over the same
# directories, and reruns the identical spec. The restarted run must:
#
#   1. produce a canonical NDJSON stream byte-identical to a never-crashed
#      baseline run (replayed cells verbatim + resumed remainder), and
#   2. report the recovery on /metrics (pp_journal_recoveries_total,
#      replayed cells, and disk-store artifact hits for the protocols the
#      crashed run already computed).
#
# Usage: scripts/crash_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ppserve" ./cmd/ppserve
go build -o "$workdir/ppsweep" ./cmd/ppsweep

# A grid slow enough to reliably catch mid-flight (~0.25s per simulate
# cell: 4000 seeded runs at population 400), with seed-driven randomness
# so byte-equality across the crash is a real claim: 8 protocols ×
# (2 simulate sizes + 1 stable) = 24 cells, several seconds end to end.
spec="$workdir/spec.json"
cat > "$spec" <<'EOF'
{
  "name": "crash-smoke",
  "protocols": [{"spec": "flock:{N}"}],
  "params": [{"from": 3, "to": 10}],
  "kinds": ["simulate", "stable"],
  "sizes": [400, 401],
  "options": {"seed": 23, "runs": 4000}
}
EOF
total_cells=24

wait_listen() {
  local log="$1" addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^ppserve: listening on //p' "$log" | head -n 1)"
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    sleep 0.1
  done
  echo "ppserve never came up; log:" >&2
  cat "$log" >&2
  return 1
}

# Baseline: the same spec through a journaled server that never crashes
# (fresh directories), canonicalized for byte comparison.
"$workdir/ppserve" -coordinator -addr 127.0.0.1:0 \
  -journal-dir "$workdir/journal-base" -artifact-dir "$workdir/artifacts-base" \
  > "$workdir/base.log" 2>&1 &
base_pid=$!
pids+=($base_pid)
base="http://$(wait_listen "$workdir/base.log")"
"$workdir/ppsweep" -spec "$spec" -cluster "$base" -canonical -quiet > "$workdir/baseline.ndjson"
kill "$base_pid" 2>/dev/null || true

# Crash run: stream the sweep, SIGKILL the server once a few cells are
# durably journaled. curl streams to a file so we can watch progress.
"$workdir/ppserve" -coordinator -addr 127.0.0.1:0 -log-requests \
  -journal-dir "$workdir/journal" -artifact-dir "$workdir/artifacts" \
  > "$workdir/run1.log" 2>&1 &
srv_pid=$!
pids+=($srv_pid)
url="http://$(wait_listen "$workdir/run1.log")"
curl -sN -X POST --data-binary @"$spec" "$url/v1/sweep" \
  > "$workdir/partial.ndjson" 2>/dev/null &
curl_pid=$!
pids+=($curl_pid)

rows=0
for _ in $(seq 1 600); do
  rows="$(grep -c '"type":"cell"' "$workdir/partial.ndjson" 2>/dev/null || true)"
  if [ "${rows:-0}" -ge 5 ]; then
    break
  fi
  sleep 0.02
done
if [ "${rows:-0}" -lt 5 ]; then
  echo "FAIL: sweep never streamed 5 cells before the kill window" >&2
  cat "$workdir/run1.log" >&2
  exit 1
fi
kill -9 "$srv_pid"
wait "$curl_pid" 2>/dev/null || true
if [ "$rows" -ge "$total_cells" ]; then
  echo "FAIL: sweep finished ($rows/$total_cells cells) before the kill — not a mid-flight crash" >&2
  exit 1
fi
echo "crash smoke: SIGKILLed coordinator after $rows/$total_cells streamed cells"

if ! ls "$workdir/journal/"*.wal > /dev/null 2>&1; then
  echo "FAIL: no journal file survived the crash" >&2
  exit 1
fi

# Restart over the same journal + artifact directories and rerun.
"$workdir/ppserve" -coordinator -addr 127.0.0.1:0 -log-requests \
  -journal-dir "$workdir/journal" -artifact-dir "$workdir/artifacts" \
  > "$workdir/run2.log" 2>&1 &
pids+=($!)
url2="http://$(wait_listen "$workdir/run2.log")"
"$workdir/ppsweep" -spec "$spec" -cluster "$url2" -canonical -quiet > "$workdir/resumed.ndjson"

if ! diff -u "$workdir/baseline.ndjson" "$workdir/resumed.ndjson"; then
  echo "FAIL: resumed canonical NDJSON diverges from the never-crashed run" >&2
  exit 1
fi

# Warm-restart assertion: flock:3's stable analysis ran before the crash,
# so this repeated-protocol request against the restarted (cold-memory)
# engine must be served from the disk artifact store, not recomputed.
curl -sf -X POST -d '{"kind":"stable","protocol":{"spec":"flock:3"}}' \
  "$url2/v1/analyze" > /dev/null

metrics="$(curl -sf "$url2/metrics")"
recoveries="$(awk '/^pp_journal_recoveries_total/ {print $2}' <<< "$metrics")"
recoveries="${recoveries:-0}"
if [ "${recoveries%.*}" -lt 1 ]; then
  echo "FAIL: restarted server reported no journal recovery" >&2
  grep '^pp_journal' <<< "$metrics" >&2 || true
  exit 1
fi
replayed="$(awk '/^pp_journal_replayed_cells_total/ {print $2}' <<< "$metrics")"
replayed="${replayed:-0}"
if [ "${replayed%.*}" -lt "$rows" ]; then
  echo "FAIL: journal replayed ${replayed%.*} cells, streamed $rows before the kill" >&2
  exit 1
fi
store_hits="$(awk '/^pp_store_reads_total\{result="hit"\}/ {print $2}' <<< "$metrics")"
if [ -z "$store_hits" ] || [ "${store_hits%.*}" -lt 1 ]; then
  echo "FAIL: restarted engine never hit the disk artifact store" >&2
  grep '^pp_store' <<< "$metrics" >&2 || true
  exit 1
fi

total_rows="$(wc -l < "$workdir/baseline.ndjson")"
echo "crash smoke OK: kill -9 after $rows cells, resume replayed ${replayed%.*} and produced $total_rows byte-identical canonical rows (journal recoveries=${recoveries%.*}, store hits=${store_hits%.*})"

# Disk-pressure phase: the same journaled sweep under an artifact budget
# well below the working set (the flock 3..10 stable artifacts alone are
# ~6.5KB). The GC must evict under pressure while the sweep completes to
# the same canonical bytes — governance degrades cache hits, never
# correctness.
"$workdir/ppserve" -coordinator -addr 127.0.0.1:0 \
  -journal-dir "$workdir/journal-gc" -artifact-dir "$workdir/artifacts-gc" \
  -artifact-max-bytes 2048 \
  > "$workdir/gc.log" 2>&1 &
pids+=($!)
gcurl="http://$(wait_listen "$workdir/gc.log")"
"$workdir/ppsweep" -spec "$spec" -cluster "$gcurl" -canonical -quiet > "$workdir/pressured.ndjson"

if ! diff -u "$workdir/baseline.ndjson" "$workdir/pressured.ndjson"; then
  echo "FAIL: canonical NDJSON diverges under artifact-store GC pressure" >&2
  exit 1
fi
gcmetrics="$(curl -sf "$gcurl/metrics")"
evictions="$(awk '/^pp_store_gc_evictions_total/ {print $2}' <<< "$gcmetrics")"
evictions="${evictions:-0}"
if [ "${evictions%.*}" -lt 1 ]; then
  echo "FAIL: artifact budget below working set but pp_store_gc_evictions_total=${evictions}" >&2
  grep '^pp_store' <<< "$gcmetrics" >&2 || true
  exit 1
fi
gc_bytes="$(awk '/^pp_store_gc_bytes/ {print $2}' <<< "$gcmetrics")"
echo "disk-pressure smoke OK: sweep byte-identical under a 2048-byte artifact budget (evictions=${evictions%.*}, tracked bytes=${gc_bytes:-?})"
