#!/usr/bin/env bash
# cluster_smoke.sh — multi-process cluster equivalence check.
#
# Boots a real coordinator and two real worker ppserve processes on
# loopback TCP, waits for heartbeat membership to form, then runs the same
# sweep spec twice with ppsweep: once in-process and once through the
# coordinator (which fans cell ranges out across both workers by protocol
# content hash). The two -canonical NDJSON streams must be byte-identical —
# the cluster acceptance criterion — and the workers must have served the
# whole grid between them (no silent local fallback).
#
# Usage: scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ppserve" ./cmd/ppserve
go build -o "$workdir/ppsweep" ./cmd/ppsweep

# Three parametric families: the dispatcher routes each family WHOLE to
# one rendezvous owner (members warm-start from their neighbors there), so
# spreading the grid across both workers needs multiple templates — these
# three land on both workers under worker IDs w1/w2 (the same property the
# in-process integration specs rely on).
# 3 families × 4 params × (2 simulate sizes + 2 verify sizes + 1 stable)
# = 60 cells.
spec="$workdir/spec.json"
cat > "$spec" <<'EOF'
{
  "name": "cluster-smoke",
  "protocols": [{"spec": "flock:{N}"}, {"spec": "binary:{N}"}, {"spec": "mod:{N}:0"}],
  "params": [{"from": 3, "to": 6}],
  "kinds": ["simulate", "verify", "stable"],
  "sizes": [6, 7],
  "options": {"seed": 11, "exactOracle": true}
}
EOF
want_cells=60

# wait_listen <logfile>: print the host:port the daemon bound (the OS picks
# the port — -addr 127.0.0.1:0 — so parallel CI jobs cannot collide).
wait_listen() {
  local log="$1" addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^ppserve: listening on //p' "$log" | head -n 1)"
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    sleep 0.1
  done
  echo "ppserve never came up; log:" >&2
  cat "$log" >&2
  return 1
}

"$workdir/ppserve" -coordinator -addr 127.0.0.1:0 -range-cells 3 -log-requests \
  > "$workdir/coord.log" 2>&1 &
pids+=($!)
coord="http://$(wait_listen "$workdir/coord.log")"

for i in 1 2; do
  "$workdir/ppserve" -worker -join "$coord" -worker-id "w$i" -addr 127.0.0.1:0 \
    > "$workdir/worker$i.log" 2>&1 &
  pids+=($!)
  wait_listen "$workdir/worker$i.log" > /dev/null
done

# Membership forms asynchronously (register + heartbeat); wait for both.
member_count() { grep -o '"id"' <<< "$1" | wc -l; }
members=""
for _ in $(seq 1 100); do
  members="$(curl -sf "$coord/v1/cluster/members" || true)"
  if [ "$(member_count "$members")" -ge 2 ]; then
    break
  fi
  sleep 0.1
done
if [ "$(member_count "$members")" -lt 2 ]; then
  echo "workers never registered; members: $members" >&2
  cat "$workdir"/worker*.log >&2
  exit 1
fi

"$workdir/ppsweep" -spec "$spec" -canonical -quiet > "$workdir/local.ndjson"
"$workdir/ppsweep" -spec "$spec" -cluster "$coord" -canonical -quiet > "$workdir/cluster.ndjson"

if ! diff -u "$workdir/local.ndjson" "$workdir/cluster.ndjson"; then
  echo "FAIL: cluster NDJSON diverges from the single-process run" >&2
  exit 1
fi

# The grid really ran on the workers: their served-cell counts sum to the
# whole grid (the coordinator executes locally only when no worker is live).
served="$(curl -sf "$coord/v1/cluster/members" \
  | grep -o '"cellsServed":[0-9]*' | cut -d: -f2 | awk '{s += $1} END {print s + 0}')"
if [ "${served:-0}" -ne "$want_cells" ]; then
  echo "FAIL: workers served $served cells, want $want_cells" >&2
  curl -sf "$coord/v1/cluster/members" >&2
  exit 1
fi

# The coordinator's Prometheus exposition agrees: the per-worker
# cells-served counters sum to the grid size. (Retries re-dispatch whole
# ranges but each cell is recorded exactly once, so the sum is exact.)
metrics="$(curl -sf "$coord/metrics")"
scraped="$(grep '^pp_cluster_cells_served_total{' <<< "$metrics" \
  | awk '{s += $2} END {print s + 0}')"
if [ "${scraped:-0}" -ne "$want_cells" ]; then
  echo "FAIL: /metrics cells-served counters sum to $scraped, want $want_cells" >&2
  grep '^pp_cluster' <<< "$metrics" >&2 || true
  exit 1
fi
# Both workers appear in the routing distribution — the hash router
# actually spread the grid instead of pinning everything to one worker.
for w in w1 w2; do
  if ! grep -q "^pp_cluster_cells_routed_total{worker=\"$w\"}" <<< "$metrics"; then
    echo "FAIL: /metrics routing distribution misses worker $w" >&2
    grep '^pp_cluster' <<< "$metrics" >&2 || true
    exit 1
  fi
done
# The circuit-breaker families are scraped (no samples on a healthy run —
# breakers only materialize per worker once dispatch feedback arrives —
# but the families must be in the exposition for dashboards to find).
for fam in pp_cluster_breaker_state pp_cluster_breaker_trips_total; do
  if ! grep -q "^# TYPE $fam " <<< "$metrics"; then
    echo "FAIL: /metrics misses the $fam family" >&2
    grep '^# TYPE pp_cluster' <<< "$metrics" >&2 || true
    exit 1
  fi
done
# And a healthy run trips nothing (zero samples sum to zero).
trips="$(awk '/^pp_cluster_breaker_trips_total{/ {s += $2} END {print s + 0}' <<< "$metrics")"
if [ "${trips%.*}" -ne 0 ]; then
  echo "FAIL: $trips breaker trips on a healthy cluster run" >&2
  grep '^pp_cluster_breaker' <<< "$metrics" >&2 || true
  exit 1
fi

rows="$(wc -l < "$workdir/local.ndjson")"
echo "cluster smoke OK: $rows canonical rows byte-identical across 1 coordinator + 2 workers ($served cells served remotely, /metrics agrees)"
